#include "core/weighted.hpp"

#include <cmath>
#include <limits>

#include "core/placement_kernel.hpp"
#include "util/assert.hpp"

namespace nubb {

WeightedBinArray::WeightedBinArray(std::vector<std::uint64_t> capacities)
    : capacities_(std::move(capacities)) {
  NUBB_REQUIRE_MSG(!capacities_.empty(), "WeightedBinArray needs at least one bin");
  for (const auto c : capacities_) {
    NUBB_REQUIRE_MSG(c >= 1, "bin capacities must be positive integers");
    total_capacity_ += c;
  }
  weights_.assign(capacities_.size(), 0);
}

void WeightedBinArray::add_weight(std::size_t i, std::uint64_t w) {
  NUBB_REQUIRE_MSG(w >= 1, "ball weight must be positive");
  weights_[i] += w;
  total_weight_ += w;
  const Load l{weights_[i], capacities_[i]};
  if (max_load_ < l) {
    max_load_ = l;
    argmax_ = i;
  }
}

void WeightedBinArray::clear() noexcept {
  weights_.assign(capacities_.size(), 0);
  total_weight_ = 0;
  max_load_ = Load{0, 1};
  argmax_ = 0;
}

BallSizeModel BallSizeModel::constant(std::uint64_t s) {
  NUBB_REQUIRE_MSG(s >= 1, "ball size must be positive");
  BallSizeModel m;
  m.kind_ = Kind::kConstant;
  m.a_ = s;
  return m;
}

BallSizeModel BallSizeModel::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  NUBB_REQUIRE_MSG(lo >= 1 && lo <= hi, "uniform size range needs 1 <= lo <= hi");
  BallSizeModel m;
  m.kind_ = Kind::kUniformRange;
  m.a_ = lo;
  m.b_ = hi;
  return m;
}

BallSizeModel BallSizeModel::shifted_geometric(double p, std::uint64_t cap) {
  NUBB_REQUIRE_MSG(p > 0.0 && p <= 1.0, "geometric parameter out of (0,1]");
  NUBB_REQUIRE_MSG(cap >= 1, "geometric size cap must be >= 1");
  BallSizeModel m;
  m.kind_ = Kind::kShiftedGeometric;
  m.p_ = p;
  m.a_ = cap;
  return m;
}

std::uint64_t BallSizeModel::sample(Xoshiro256StarStar& rng) const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kUniformRange:
      return a_ + rng.bounded(b_ - a_ + 1);
    case Kind::kShiftedGeometric: {
      // Inversion: failures-before-success, shifted by 1, truncated.
      const double u = 1.0 - rng.next_double();  // (0, 1]
      const auto g = static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p_)));
      const std::uint64_t size = 1 + g;
      return size > a_ ? a_ : size;
    }
  }
  return 1;  // unreachable
}

double BallSizeModel::mean() const {
  switch (kind_) {
    case Kind::kConstant:
      return static_cast<double>(a_);
    case Kind::kUniformRange:
      return 0.5 * (static_cast<double>(a_) + static_cast<double>(b_));
    case Kind::kShiftedGeometric:
      return 1.0 + (1.0 - p_) / p_;
  }
  return 1.0;  // unreachable
}

std::uint64_t BallSizeModel::max_size() const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kUniformRange:
      return b_;
    case Kind::kShiftedGeometric:
      return a_;  // truncation cap
  }
  return 1;  // unreachable
}

namespace {

using DecideFn = std::size_t (*)(const std::uint64_t*, const std::uint64_t*,
                                 const std::size_t*, std::uint32_t, std::uint64_t,
                                 Xoshiro256StarStar&);

/// Resolve the tie-break / comparison-width dispatch once per game.
DecideFn pick_decide(TieBreak tie_break, bool fast64) {
  switch (tie_break) {
    case TieBreak::kPreferLargerCapacity:
      return fast64 ? &detail::decide_destination<true, TieBreak::kPreferLargerCapacity>
                    : &detail::decide_destination<false, TieBreak::kPreferLargerCapacity>;
    case TieBreak::kUniform:
      return fast64 ? &detail::decide_destination<true, TieBreak::kUniform>
                    : &detail::decide_destination<false, TieBreak::kUniform>;
    case TieBreak::kFirstChoice:
      return fast64 ? &detail::decide_destination<true, TieBreak::kFirstChoice>
                    : &detail::decide_destination<false, TieBreak::kFirstChoice>;
  }
  NUBB_REQUIRE_MSG(false, "unreachable: unknown tie-break policy");
  return nullptr;
}

/// Shared validation for the weighted entry points; mirrors the
/// PlacementKernel constructor (including the distinct-support bugfix).
void validate_weighted(const WeightedBinArray& bins, const BinSampler& sampler,
                       const GameConfig& cfg) {
  NUBB_REQUIRE_MSG(cfg.choices >= 1, "need at least one choice per ball");
  NUBB_REQUIRE_MSG(cfg.choices <= PlacementKernel::kMaxChoices,
                   "more than 64 choices per ball");
  NUBB_REQUIRE_MSG(sampler.size() == bins.size(), "sampler and bin array size mismatch");
  NUBB_REQUIRE_MSG(!cfg.distinct_choices || cfg.choices <= bins.size(),
                   "cannot draw more distinct bins than exist");
  NUBB_REQUIRE_MSG(!cfg.distinct_choices || cfg.choices <= sampler.support_size(),
                   "distinct choices exceed the sampler support "
                   "(bins with positive probability)");
}

/// Draw the candidate set (independent; distinct mode redraws duplicates),
/// byte-identical in RNG order to the historic per-ball path.
inline void draw_candidates(const BinSampler& sampler, std::uint32_t d, bool distinct,
                            Xoshiro256StarStar& rng, std::size_t* out) {
  if (!distinct) {
    for (std::uint32_t k = 0; k < d; ++k) out[k] = sampler.sample(rng);
    return;
  }
  for (std::uint32_t k = 0; k < d; ++k) {
    for (;;) {
      const std::size_t candidate = sampler.sample(rng);
      bool seen = false;
      for (std::uint32_t j = 0; j < k; ++j) {
        if (out[j] == candidate) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        out[k] = candidate;
        break;
      }
    }
  }
}

}  // namespace

std::size_t place_one_weighted_ball(WeightedBinArray& bins, const BinSampler& sampler,
                                    std::uint64_t w, const GameConfig& cfg,
                                    Xoshiro256StarStar& rng) {
  validate_weighted(bins, sampler, cfg);
  std::size_t choices[PlacementKernel::kMaxChoices] = {};
  draw_candidates(sampler, cfg.choices, cfg.distinct_choices, rng, choices);
  // Single-ball entry: no horizon information, so stay on the exact
  // 128-bit comparison path.
  const std::size_t dest = pick_decide(cfg.tie_break, /*fast64=*/false)(
      bins.weights().data(), bins.capacities().data(), choices, cfg.choices, w, rng);
  bins.add_weight(dest, w);
  return dest;
}

WeightedGameResult play_weighted_game(WeightedBinArray& bins, const BinSampler& sampler,
                                      const BallSizeModel& sizes, const GameConfig& cfg,
                                      Xoshiro256StarStar& rng) {
  validate_weighted(bins, sampler, cfg);

  std::uint64_t balls = cfg.balls;
  if (balls == 0) {
    balls = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(bins.total_capacity()) / sizes.mean()));
    if (balls == 0) balls = 1;
  }

  // 64-bit comparisons are exact iff the largest numerator that can appear
  // (all planned weight in one bin plus the next ball) times the largest
  // capacity cannot wrap; every step of the horizon computation is itself
  // overflow-checked.
  std::uint64_t cmax = 0;
  for (const std::uint64_t c : bins.capacities()) {
    if (c > cmax) cmax = c;
  }
  constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t smax = sizes.max_size();
  bool fast64 = false;
  if (smax > 0 && balls <= (kU64Max - smax) / smax &&
      bins.total_weight() <= kU64Max - balls * smax - smax) {
    const std::uint64_t horizon = bins.total_weight() + balls * smax + smax;
    fast64 = horizon <= kU64Max / cmax;
  }
  const DecideFn decide = pick_decide(cfg.tie_break, fast64);

  const std::uint64_t* weights = bins.weights().data();
  const std::uint64_t* caps = bins.capacities().data();
  std::size_t choices[PlacementKernel::kMaxChoices] = {};  // zeroed once, not per ball
  for (std::uint64_t b = 0; b < balls; ++b) {
    const std::uint64_t w = sizes.sample(rng);
    draw_candidates(sampler, cfg.choices, cfg.distinct_choices, rng, choices);
    const std::size_t dest = decide(weights, caps, choices, cfg.choices, w, rng);
    bins.add_weight(dest, w);
  }
  return WeightedGameResult{bins.max_load(), bins.argmax_bin(), balls, bins.total_weight()};
}

}  // namespace nubb
