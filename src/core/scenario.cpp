#include "core/scenario.hpp"

#include <algorithm>
#include <ostream>

#include "theory/bounds.hpp"
#include "util/table.hpp"

namespace nubb {

// ---------------------------------------------------------------------------
// RunMeta
// ---------------------------------------------------------------------------

void RunMeta::to_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("experiment", experiment);
  w.kv("n", n);
  w.kv("total_capacity", total_capacity);
  w.kv("caps_hash", caps_hash);
  w.kv("policy", policy);
  w.kv("choices", choices);
  w.kv("tie_break", tie_break);
  w.kv("balls", balls);
  w.kv("batch", batch);
  w.kv("stream", stream);
  w.kv("replications", replications);
  w.kv("seed", seed);
  w.kv("chunks", chunks);
  w.kv("checkpoint", checkpoint);
  w.kv("profile", profile);
  w.kv("classes", classes);
  w.kv("huge_pages", huge_pages);
  w.kv("simd", simd);
  w.end_object();
}

RunMeta RunMeta::from_json(const JsonValue& v) {
  RunMeta m;
  m.experiment = v.at("experiment").as_string();
  m.n = v.at("n").as_uint64();
  m.total_capacity = v.at("total_capacity").as_uint64();
  m.caps_hash = v.at("caps_hash").as_uint64();
  m.policy = v.at("policy").as_string();
  m.choices = v.at("choices").as_uint64();
  m.tie_break = v.at("tie_break").as_string();
  m.balls = v.at("balls").as_uint64();
  m.batch = v.at("batch").as_uint64();
  // State files written before stream v2 existed carry no "stream" key;
  // they were produced by (what is now called) stream v1.
  const JsonValue* stream = v.find("stream");
  m.stream = stream != nullptr ? stream->as_string() : "v1";
  m.replications = v.at("replications").as_uint64();
  m.seed = v.at("seed").as_uint64();
  m.chunks = v.at("chunks").as_uint64();
  m.checkpoint = v.at("checkpoint").as_uint64();
  m.profile = v.at("profile").as_bool();
  m.classes = v.at("classes").as_bool();
  // Provenance-only field added later; older state files carry no
  // "huge_pages" key and merge as if it were "auto" (merge_key resets it
  // anyway — memory layout never affects results).
  const JsonValue* hp = v.find("huge_pages");
  m.huge_pages = hp != nullptr ? hp->as_string() : "auto";
  // Same deal for the resolve-stage SIMD provenance: scalar and AVX2 runs
  // are bit-identical, so absent reads as "scalar" and merge_key resets it.
  const JsonValue* sd = v.find("simd");
  m.simd = sd != nullptr ? sd->as_string() : "scalar";
  return m;
}

std::uint64_t caps_fingerprint(const std::vector<std::uint64_t>& caps) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint64_t c : caps) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (c >> (8 * byte)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void Scenario::normalize_meta(RunMeta& meta) const {
  meta.checkpoint = 0;
  meta.profile = false;
  meta.classes = false;
}

void ScenarioRegistry::add(std::unique_ptr<Scenario> scenario) {
  // Copy, not reference: a failed emplace may have constructed (and then
  // destroyed) the node holding the Scenario, taking its name_ with it.
  const std::string name = scenario->name();
  if (!by_name_.emplace(name, std::move(scenario)).second) {
    throw std::runtime_error("ScenarioRegistry: duplicate scenario name: " + name);
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const noexcept {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

const Scenario& ScenarioRegistry::require(const std::string& name) const {
  if (const Scenario* s = find(name)) return *s;
  std::string known;
  for (const auto& [key, scenario] : by_name_) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw std::runtime_error("unknown experiment \"" + name + "\" (known: " + known + ")");
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(by_name_.size());
  for (const auto& [key, scenario] : by_name_) out.push_back(scenario.get());
  return out;  // by_name_ is an ordered map: already name-sorted
}

// ---------------------------------------------------------------------------
// Typed scenario cores
// ---------------------------------------------------------------------------

ExperimentShard<KeyedCollector<ScalarCollector>> class_max_load_shard(
    const ScenarioSpec& spec) {
  const GameFixture fixture(spec.capacities, spec.policy, spec.game);
  return replicate_shard<KeyedCollector<ScalarCollector>>(
      spec.capacities, spec.exp,
      [&fixture](std::uint64_t, Xoshiro256StarStar& rng, ReplicationScratch& w,
                 KeyedCollector<ScalarCollector>& local) {
        fixture.run_one(rng, w.bins);
        // The distinct capacity count is tiny (a handful of classes), so a
        // flat map per replication stays cheap.
        std::map<std::uint64_t, double> class_max;
        for (std::size_t i = 0; i < w.bins.size(); ++i) {
          const double v = w.bins.load_value(i);
          auto [it, fresh] = class_max.try_emplace(w.bins.capacity(i), v);
          if (!fresh && v > it->second) it->second = v;
        }
        for (const auto& [cap, value] : class_max) local.per_key[cap].add(value);
      },
      spec.game.memory);
}

std::map<std::uint64_t, Summary> class_max_load_merge(
    const std::vector<ExperimentShard<KeyedCollector<ScalarCollector>>>& shards) {
  const KeyedCollector<ScalarCollector> merged = merge_shards(shards);
  std::map<std::uint64_t, Summary> out;
  for (const auto& [cap, collector] : merged.per_key) out[cap] = Summary::from(collector.stats);
  return out;
}

ExperimentShard<ScalarCollector> hit_every_bin_shard(const ScenarioSpec& spec) {
  const GameFixture fixture(spec.capacities, spec.policy, spec.game);
  return replicate_shard<ScalarCollector>(
      spec.capacities, spec.exp,
      [&fixture](std::uint64_t, Xoshiro256StarStar& rng, ReplicationScratch& w,
                 ScalarCollector& local) {
        fixture.run_one(rng, w.bins);
        bool covered = true;
        for (std::size_t i = 0; i < w.bins.size(); ++i) {
          if (w.bins.balls(i) == 0) {
            covered = false;
            break;
          }
        }
        local.add(covered ? 1.0 : 0.0);
      },
      spec.game.memory);
}

Summary hit_every_bin_merge(const std::vector<ExperimentShard<ScalarCollector>>& shards) {
  return Summary::from(merge_shards(shards).stats);
}

// ---------------------------------------------------------------------------
// Built-in scenarios
// ---------------------------------------------------------------------------

namespace {

/// Shared plumbing for scenarios built on one collector type. A concrete
/// scenario supplies only `typed_shard` (one engine pass for this shard)
/// and `report` (present the merged collector); serialization, validation,
/// merging, and the unsharded run are all derived from those, so the full
/// and sharded paths cannot drift.
template <typename C>
class TypedScenario : public Scenario {
 public:
  using Collector = C;
  using Scenario::Scenario;

  void run_shard(const ScenarioSpec& spec, JsonWriter& w) const final {
    typed_shard(spec).to_json(w);
  }

  void check_state(const JsonValue& state) const final {
    (void)ExperimentShard<Collector>::from_json(state);
  }

  void merge_and_report(const std::vector<JsonValue>& states,
                        const ReportContext& ctx) const final {
    std::vector<ExperimentShard<Collector>> shards;
    shards.reserve(states.size());
    for (const JsonValue& s : states) {
      shards.push_back(ExperimentShard<Collector>::from_json(s));
    }
    report(merge_shards(shards), ctx);
  }

  void run_and_report(const ScenarioSpec& spec, const ReportContext& ctx) const final {
    require_unsharded(spec.exp);
    report(merge_shards<Collector>({typed_shard(spec)}), ctx);
  }

 protected:
  virtual ExperimentShard<Collector> typed_shard(const ScenarioSpec& spec) const = 0;
  virtual void report(const Collector& merged, const ReportContext& ctx) const = 0;
};

// --- max-load (the historic default run) ------------------------------------

/// One engine pass feeds all three measurements the historic default run
/// offered (distribution, optional profile, optional class fractions) —
/// the games are played once, not once per collector.
using MaxLoadCollectors =
    MultiCollector<SampleCollector, VectorMeanCollector, KeyFrequencyCollector>;

ExperimentShard<MaxLoadCollectors> max_load_scenario_shard(const ScenarioSpec& spec) {
  const GameFixture fixture(spec.capacities, spec.policy, spec.game);
  const bool profile = spec.profile;
  const bool classes = spec.classes;
  return replicate_shard<MaxLoadCollectors>(
      spec.capacities, spec.exp,
      [&fixture, profile, classes](std::uint64_t, Xoshiro256StarStar& rng,
                                   ReplicationScratch& w, MaxLoadCollectors& local) {
        const GameResult result = fixture.run_one(rng, w.bins);
        local.part<0>().add(result.max_load_value());
        if (profile) {
          sorted_load_profile(w.bins, w.scratch);
          local.part<1>().add(w.scratch);
        }
        if (classes) {
          local.part<2>().add_trial();
          for (const std::uint64_t cap : capacities_attaining_max(w.bins)) {
            local.part<2>().add(cap);
          }
        }
      },
      spec.game.memory);
}

void print_max_load_report(const RunMeta& meta, const MaxLoadDistribution& dist,
                           std::ostream& out) {
  TextTable table("nubb_run: n=" + std::to_string(meta.n) +
                  ", C=" + std::to_string(meta.total_capacity) +
                  ", m=" + std::to_string(meta.balls) + ", d=" + std::to_string(meta.choices) +
                  ", policy=" + meta.policy + ", reps=" + std::to_string(meta.replications));
  table.set_header({"metric", "value"});
  table.add_row({"mean max load", TextTable::num(dist.summary.mean)});
  table.add_row({"std error", TextTable::num(dist.summary.std_error, 6)});
  table.add_row({"95% CI half-width", TextTable::num(dist.summary.ci_half_width_95(), 6)});
  table.add_row({"median / q95 / q99",
                 TextTable::num(dist.q50) + " / " + TextTable::num(dist.q95) + " / " +
                     TextTable::num(dist.q99)});
  table.add_row({"min / max observed",
                 TextTable::num(dist.summary.min) + " / " + TextTable::num(dist.summary.max)});
  table.add_row({"average load m/C",
                 TextTable::num(static_cast<double>(meta.balls) /
                                static_cast<double>(meta.total_capacity))});
  table.add_row({"Theorem-3 bound (+4)",
                 TextTable::num(bounds::theorem3_bound(
                     static_cast<double>(meta.n),
                     std::max<std::uint32_t>(static_cast<std::uint32_t>(meta.choices), 2),
                     4.0))});
  out << table;
}

void print_profile(const std::vector<double>& profile, std::ostream& out) {
  TextTable pt("mean sorted load profile (rank: load)");
  pt.set_header({"rank", "mean load"});
  const std::size_t stride = std::max<std::size_t>(1, profile.size() / 20);
  for (std::size_t i = 0; i < profile.size(); i += stride) {
    pt.add_row({TextTable::num(static_cast<std::uint64_t>(i)), TextTable::num(profile[i])});
  }
  out << pt;
}

void print_classes(const std::map<std::uint64_t, double>& fractions, std::ostream& out) {
  TextTable ct("capacity class attaining the maximum (fraction of runs)");
  ct.set_header({"capacity", "fraction"});
  for (const auto& [cap, frac] : fractions) {
    ct.add_row({TextTable::num(cap), TextTable::num(frac)});
  }
  out << ct;
}

class MaxLoadScenario final : public TypedScenario<MaxLoadCollectors> {
 public:
  MaxLoadScenario()
      : TypedScenario(
            "max-load",
            "distribution of the final maximum load (mean / quantiles / extremes); "
            "--profile and --classes add the sorted-profile and class-of-max views") {}

  void normalize_meta(RunMeta& meta) const override {
    meta.checkpoint = 0;  // profile / classes stay: this report reads them
  }

 protected:
  ExperimentShard<MaxLoadCollectors> typed_shard(const ScenarioSpec& spec) const override {
    return max_load_scenario_shard(spec);
  }

  void report(const MaxLoadCollectors& merged, const ReportContext& ctx) const override {
    const SampleCollector& sample = merged.part<0>();

    MaxLoadDistribution dist;
    dist.summary = Summary::from(sample.stats);
    if (!sample.values.empty()) {
      const std::vector<double> qs = quantiles(sample.values, {0.50, 0.95, 0.99});
      dist.q50 = qs[0];
      dist.q95 = qs[1];
      dist.q99 = qs[2];
    }

    print_max_load_report(ctx.meta, dist, ctx.out);
    if (ctx.meta.profile) print_profile(merged.part<1>().mean(), ctx.out);
    std::map<std::uint64_t, double> fractions;
    if (ctx.meta.classes) {
      const KeyFrequencyCollector& wins = merged.part<2>();
      for (const auto& [cap, count] : wins.counts()) {
        fractions[cap] = static_cast<double>(count) / static_cast<double>(wins.trials());
      }
      print_classes(fractions, ctx.out);
    }

    if (ctx.json) {
      JsonWriter& j = *ctx.json;
      j.key("max_load");
      j.begin_object();
      j.kv("mean", dist.summary.mean);
      j.kv("std_error", dist.summary.std_error);
      j.kv("median", dist.q50);
      j.kv("q95", dist.q95);
      j.kv("q99", dist.q99);
      j.kv("min", dist.summary.min);
      j.kv("max", dist.summary.max);
      j.end_object();
      if (ctx.meta.profile) {
        j.key("profile");
        j.begin_array();
        for (const double x : merged.part<1>().mean()) j.value(x);
        j.end_array();
      }
      if (ctx.meta.classes) {
        j.key("classes");
        j.begin_array();
        for (const auto& [cap, frac] : fractions) {
          j.begin_object();
          j.kv("capacity", cap);
          j.kv("fraction", frac);
          j.end_object();
        }
        j.end_array();
      }
    }
  }
};

// --- gap-trace ---------------------------------------------------------------

class GapTraceScenario final : public TypedScenario<VectorMeanCollector> {
 public:
  GapTraceScenario()
      : TypedScenario("gap-trace",
                      "mean (max load - average load) after every --checkpoint balls while "
                      "the balls arrive (Figure 16); sequential process only") {}

  void normalize_meta(RunMeta& meta) const override {
    meta.profile = false;  // checkpoint stays: it is this scenario's x-axis
    meta.classes = false;
  }

 protected:
  ExperimentShard<VectorMeanCollector> typed_shard(const ScenarioSpec& spec) const override {
    // GameConfig's "0 means m = C" convention, resolved to the explicit
    // count the checkpointed runner requires.
    std::uint64_t total = spec.game.balls;
    if (total == 0) {
      for (const std::uint64_t c : spec.capacities) total += c;
    }
    return mean_gap_trace_shard(spec.capacities, spec.policy, spec.game, total,
                                spec.checkpoint_interval, spec.exp);
  }

  void report(const VectorMeanCollector& merged, const ReportContext& ctx) const override {
    const std::vector<double> trace = merged.mean();
    TextTable table("mean load gap (max - average) at checkpoints, interval " +
                    std::to_string(ctx.meta.checkpoint));
    table.set_header({"balls", "mean gap"});
    const std::size_t stride = std::max<std::size_t>(1, trace.size() / 20);
    for (std::size_t i = 0; i < trace.size(); i += stride) {
      const std::uint64_t balls =
          std::min<std::uint64_t>((i + 1) * ctx.meta.checkpoint, ctx.meta.balls);
      table.add_row({TextTable::num(balls), TextTable::num(trace[i])});
    }
    ctx.out << table;

    if (ctx.json) {
      JsonWriter& j = *ctx.json;
      j.key("gap_trace");
      j.begin_object();
      j.kv("interval", ctx.meta.checkpoint);
      j.key("mean_gap");
      j.begin_array();
      for (const double g : trace) j.value(g);
      j.end_array();
      j.end_object();
    }
  }
};

// --- class-max-load ----------------------------------------------------------

class ClassMaxLoadScenario final : public TypedScenario<KeyedCollector<ScalarCollector>> {
 public:
  ClassMaxLoadScenario()
      : TypedScenario("class-max-load",
                      "per-capacity-class distribution of that class's own maximum load "
                      "(which classes run hot, beyond who holds the global maximum)") {}

 protected:
  ExperimentShard<KeyedCollector<ScalarCollector>> typed_shard(
      const ScenarioSpec& spec) const override {
    return class_max_load_shard(spec);
  }

  void report(const KeyedCollector<ScalarCollector>& merged,
              const ReportContext& ctx) const override {
    std::map<std::uint64_t, Summary> by_class;
    for (const auto& [cap, collector] : merged.per_key) {
      by_class[cap] = Summary::from(collector.stats);
    }
    TextTable table("per-class max load over " + std::to_string(ctx.meta.replications) +
                    " replications");
    table.set_header({"capacity", "mean", "std error", "min", "max"});
    for (const auto& [cap, s] : by_class) {
      table.add_row({TextTable::num(cap), TextTable::num(s.mean),
                     TextTable::num(s.std_error, 6), TextTable::num(s.min),
                     TextTable::num(s.max)});
    }
    ctx.out << table;

    if (ctx.json) {
      JsonWriter& j = *ctx.json;
      j.key("class_max_load");
      j.begin_array();
      for (const auto& [cap, s] : by_class) {
        j.begin_object();
        j.kv("capacity", cap);
        j.kv("mean", s.mean);
        j.kv("std_error", s.std_error);
        j.kv("min", s.min);
        j.kv("max", s.max);
        j.end_object();
      }
      j.end_array();
    }
  }
};

// --- hit-every-bin -----------------------------------------------------------

class HitEveryBinScenario final : public TypedScenario<ScalarCollector> {
 public:
  HitEveryBinScenario()
      : TypedScenario("hit-every-bin",
                      "probability that every bin receives at least one ball "
                      "(coverage; raise --balls-factor to watch it approach 1)") {}

 protected:
  ExperimentShard<ScalarCollector> typed_shard(const ScenarioSpec& spec) const override {
    return hit_every_bin_shard(spec);
  }

  void report(const ScalarCollector& merged, const ReportContext& ctx) const override {
    const Summary s = Summary::from(merged.stats);
    TextTable table("hit-every-bin probability over " + std::to_string(s.count) +
                    " replications");
    table.set_header({"metric", "value"});
    table.add_row({"P[every bin hit]", TextTable::num(s.mean)});
    table.add_row({"std error", TextTable::num(s.std_error, 6)});
    ctx.out << table;

    if (ctx.json) {
      JsonWriter& j = *ctx.json;
      j.key("hit_every_bin");
      j.begin_object();
      j.kv("probability", s.mean);
      j.kv("std_error", s.std_error);
      j.kv("replications", s.count);
      j.end_object();
    }
  }
};

}  // namespace

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry;
    r->add(std::make_unique<MaxLoadScenario>());
    r->add(std::make_unique<GapTraceScenario>());
    r->add(std::make_unique<ClassMaxLoadScenario>());
    r->add(std::make_unique<HitEveryBinScenario>());
    return r;
  }();
  return *registry;
}

}  // namespace nubb
