/// \file placement_kernel_avx2.cpp
/// AVX2 bodies of the stream-v2 bulk loops. The only core TU compiled with
/// -mavx2 (src/CMakeLists.txt); when the toolchain lacks the flag the same
/// TU builds aborting stubs, so the symbols always link and runtime dispatch
/// (PlacementKernel::select_for_tie_break, via util/simd.hpp) is the only
/// gate.
///
/// Bit-identical-to-scalar is the contract, not a goal: these loops consume
/// the exact stream-v2 draw order (docs/stream-v2.md) and reproduce the
/// scalar resolve decisions lane for lane. The vector strategy:
///
///  * Candidate phase — the serial xoshiro recurrence generates the block's
///    raw words scalar; the Lemire product, threshold gather, acceptance
///    compare and alias blend run four lanes wide. A chunk containing a
///    rejected low half (probability < n / 2^64 per draw) is replayed
///    through the exact scalar redraw loop from a saved state, so the
///    number of next() steps matches draw for draw.
///  * Resolve phase (d = 2, 3) — balls are decided in groups of four from
///    slot values loaded before the group. A group is clean when no
///    candidate duplicates and no ball's destination appears among another
///    ball's candidates — distinctness alone: the placement decisions never
///    read the running maximum, so a clean group's vector decisions equal
///    the serial ones even when a ball raises the record. A raise inside a
///    clean group only routes the max-load bookkeeping through an outlined
///    scalar loop (raise_max4, the strict commit_known compare in ball
///    order); the placements stand. A dirty group (a few percent at the
///    paper's operating points) is replayed whole through the shared scalar
///    body (detail::resolve_ball_d{2,3}_w) in ball order against live
///    slots, so totals and the running maximum update in the scalar
///    sequence.
///  * Fused fill+resolve (d = 2, unit balls, alias sampler, n <= 2048) —
///    resolve consumes no randomness, so while block k's groups are decided
///    (shuffle-port-bound vector code) the loop interleaves eight scalar
///    draws of block k + 1 per group (serial-RNG-latency-bound, complementary
///    ports) into a double buffer. The draws are issued in the exact stream
///    order (candidates, then tie words, block by block), so the RNG word
///    sequence — and therefore every result — is unchanged; only the
///    schedule overlaps. Small tables are where the fill is scalar anyway
///    (the vector fill needs gathers that only pay off on larger n), which
///    is why the gate sits at the scalar-fill regime.
///  * d = 1 and generic d keep the scalar resolve (it is load-bound, not
///    compute-bound) and take only the vector candidate fill.
///
/// Only the Fast64 comparison width is vectorised (128-bit cross products
/// have no AVX2 form); select_for_tie_break never installs these entry
/// points otherwise.

#include "core/placement_kernel.hpp"

#include "util/assert.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/placement_resolve.hpp"
#include "core/weighted.hpp"
#include "util/avx2_math.hpp"
#include "util/int128.hpp"
#include "util/memory.hpp"

namespace nubb {

namespace {

using namespace detail::avx2;
using detail::draw_candidate_v2;
using detail::kPrefetchAhead;
using detail::ModelSizes;
using detail::prefetch_end;
using detail::RunTotals;
using detail::UnitSizes;

/// Vector candidate phase: bit-identical to detail::fill_candidates_v2.
/// Uniform samplers take the shared RNG fast path; alias tables run the
/// fused single-word draw (slot = high product half, mantissa = bits 11..63
/// of the accepted low half) four lanes at a time with chunk-replay on the
/// rare Lemire rejection.
void fill_candidates_avx2(const std::uint64_t* const threshold,
                          const std::uint32_t* const alias, const std::uint64_t n,
                          std::uint32_t* const cand, const std::size_t count,
                          Xoshiro256StarStar& rng) {
  if (threshold == nullptr) {
    detail::bounded_fill_avx2(rng, n, cand, count);
    return;
  }
  // Small alias tables live in L1 (12 bytes of table per bin), where the
  // scalar fused draw beats the vector pass: the two table gathers per quad
  // cost more than they hide, while at 100k+ bins they overlap four L2/L3
  // loads and win by ~2x. The draws are identical either way — this is a
  // pure speed crossover, measured on Skylake.
  if (n <= 2048) {
    detail::fill_candidates_v2(threshold, alias, n, cand, count, rng);
    return;
  }
  const std::uint64_t reject = (0 - n) % n;
  constexpr std::size_t kChunk = 32;
  std::uint64_t raw[kChunk];
  const __m256i vn = _mm256_set1_epi64x(static_cast<long long>(n));
  const __m256i vreject = _mm256_set1_epi64x(static_cast<long long>(reject));
  std::size_t done = 0;
  while (done < count) {
    const std::size_t c = std::min(kChunk, count - done) & ~std::size_t{3};
    if (c == 0) break;  // fewer than 4 draws left: scalar tail below
    const std::array<std::uint64_t, 4> saved = rng.state();
    {
      Xoshiro256StarStar local = rng;  // keep the state in registers (TBAA)
      for (std::size_t j = 0; j < c; ++j) raw[j] = local.next();
      rng = local;
    }
    __m256i any_reject = _mm256_setzero_si256();
    for (std::size_t j = 0; j < c; j += 4) {
      const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + j));
      __m256i hi;
      __m256i lo;
      mul64_hilo_b32(x, vn, hi, lo);
      any_reject = _mm256_or_si256(any_reject, cmplt_u64(lo, vreject));
      // 64-bit lane indices: slots can exceed 2^31, which a 32-bit index
      // gather would sign-extend into garbage.
      const __m256i thr =
          _mm256_i64gather_epi64(reinterpret_cast<const long long*>(threshold), hi, 8);
      const __m256i mant = _mm256_srli_epi64(lo, 11);
      // Both sides are below 2^53, so the signed compare is exact.
      const __m256i accept = _mm256_cmpgt_epi64(thr, mant);
      const __m128i slot32 = pack_lo32(hi);
      const __m128i al32 =
          _mm256_i64gather_epi32(reinterpret_cast<const int*>(alias), hi, 4);
      const __m128i res = _mm_blendv_epi8(al32, slot32, pack_lo32(accept));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(cand + done + j), res);
    }
    if (!_mm256_testz_si256(any_reject, any_reject)) [[unlikely]] {
      // A rejected word shifts every later draw by at least one next();
      // replay the chunk through the exact scalar consumption order.
      rng = Xoshiro256StarStar(saved);
      Xoshiro256StarStar local = rng;
      for (std::size_t j = 0; j < c; ++j) {
        cand[done + j] =
            static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
      }
      rng = local;
    }
    done += c;
  }
  if (done < count) {
    Xoshiro256StarStar local = rng;
    for (; done < count; ++done) {
      cand[done] =
          static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
    }
    rng = local;
  }
}

/// Operand width the resolve cross products were proven to need, picked per
/// run call (see mul_width below). Narrower operands drop whole columns of
/// the 32x32 schoolbook product and, at kVals32, the sign-flips of the
/// unsigned compares.
enum class MulW {
  kFull,    // capacities up to 2^64: full mullo64
  kCaps32,  // every capacity < 2^32: two-column product
  kVals32,  // capacities and every reachable numerator < 2^31: one vpmuludq,
            // products < 2^62, signed compares exact as-is
};

/// Cross-product multiply with a capacity operand. The capacity is always
/// the multiplier in the resolve cross products, so these are the only
/// mullo64 forms the d = 2, 3 loops need.
template <MulW MW>
NUBB_ALWAYS_INLINE inline __m256i mul_cap(const __m256i x, const __m256i cap) {
  if constexpr (MW == MulW::kVals32) {
    return _mm256_mul_epu32(x, cap);
  } else if constexpr (MW == MulW::kCaps32) {
    return mullo64_b32(x, cap);
  } else {
    return mullo64(x, cap);
  }
}

/// Unsigned per-lane a < b for cross products and capacities: under kVals32
/// both sides are below 2^62, so the signed compare is exact without the
/// sign-flip xors.
template <MulW MW>
NUBB_ALWAYS_INLINE inline __m256i prod_lt(const __m256i a, const __m256i b) {
  if constexpr (MW == MulW::kVals32) {
    return _mm256_cmpgt_epi64(b, a);
  } else {
    return cmplt_u64(a, b);
  }
}

template <MulW MW>
NUBB_ALWAYS_INLINE inline __m256i prod_gt(const __m256i a, const __m256i b) {
  return prod_lt<MW>(b, a);
}

/// Per-ball committed amounts for one group of four, as 64-bit lanes.
NUBB_ALWAYS_INLINE inline __m256i load_w(UnitSizes, std::size_t) {
  return _mm256_set1_epi64x(1);
}
NUBB_ALWAYS_INLINE inline __m256i load_w(const ModelSizes& sz, std::size_t b) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sz.buf + b));
}

/// Largest single-ball commit the size policy can produce (0 = unbounded).
NUBB_ALWAYS_INLINE inline std::uint64_t max_ball_size(UnitSizes) { return 1; }
NUBB_ALWAYS_INLINE inline std::uint64_t max_ball_size(const ModelSizes& sz) {
  return sz.model->max_size();
}

/// Operand width for this run call. kVals32 needs a proof that every
/// numerator stays below 2^31 for the whole run: largest initial numerator
/// plus count * (largest ball size), with capacities below 2^31 too. The
/// slot scan is O(n), so it is only attempted when the run is long enough
/// to amortise it; short calls (the serving path places small batches) fall
/// back to kCaps32, which is always safe under caps_u32_.
template <class Sizes>
MulW mul_width(const bool caps_u32, const BinSlot* const slots, const std::uint64_t n,
               const std::uint64_t count, const Sizes& sz) {
  if (!caps_u32) return MulW::kFull;
  const std::uint64_t wmax = max_ball_size(sz);
  if (wmax == 0 || count < n || count > (std::uint64_t{1} << 31) / wmax) {
    return MulW::kCaps32;
  }
  std::uint64_t mx_num = 0;
  std::uint64_t mx_cap = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    mx_num = std::max(mx_num, slots[i].num);
    mx_cap = std::max(mx_cap, slots[i].cap);
  }
  constexpr std::uint64_t kLim = std::uint64_t{1} << 31;
  if (mx_cap >= kLim || mx_num >= kLim - count * wmax) return MulW::kCaps32;
  return MulW::kVals32;
}

/// (num, cap) of four slots as 64-bit lanes, in argument order. BinSlot is a
/// 16-byte (num, cap) pair, so each slot is one 128-bit load — on the L1/L2
/// resident arrays these kernels target, four plain loads beat a pair of
/// vpgatherqq by a wide margin (the gather's index latency serialises).
NUBB_ALWAYS_INLINE inline void load_slots4(const BinSlot* const slots, const std::uint32_t a,
                                           const std::uint32_t b, const std::uint32_t c,
                                           const std::uint32_t d, __m256i& num, __m256i& cap) {
  const __m128i sa = _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + a));
  const __m128i sb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + b));
  const __m128i sc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + c));
  const __m128i sd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + d));
  // unpack interleaves within 128-bit halves, so pairing (a, c) with (b, d)
  // puts the numerators (and capacities) back in argument order.
  const __m256i p0 = _mm256_set_m128i(sc, sa);
  const __m256i p1 = _mm256_set_m128i(sd, sb);
  num = _mm256_unpacklo_epi64(p0, p1);
  cap = _mm256_unpackhi_epi64(p0, p1);
}

/// All 16 spreads of 4 bits into 64-bit lane masks: kTieLut[m] has lane j set
/// to all-ones iff bit j of m is set. 512 bytes, L1-resident in the group
/// loop — one shift + one load replaces the broadcast/variable-shift chain.
alignas(32) constexpr std::uint64_t kTieLut[16][4] = {
    {0, 0, 0, 0},   {~0ull, 0, 0, 0},         {0, ~0ull, 0, 0},
    {~0ull, ~0ull, 0, 0},                     {0, 0, ~0ull, 0},
    {~0ull, 0, ~0ull, 0},                     {0, ~0ull, ~0ull, 0},
    {~0ull, ~0ull, ~0ull, 0},                 {0, 0, 0, ~0ull},
    {~0ull, 0, 0, ~0ull},                     {0, ~0ull, 0, ~0ull},
    {~0ull, ~0ull, 0, ~0ull},                 {0, 0, ~0ull, ~0ull},
    {~0ull, 0, ~0ull, ~0ull},                 {0, ~0ull, ~0ull, ~0ull},
    {~0ull, ~0ull, ~0ull, ~0ull},
};

/// Tie bits of balls b..b+3 (d = 2 packing) as full-lane masks. The group
/// loop steps b by 4, so the four bits always live in one tie word.
NUBB_ALWAYS_INLINE inline __m256i tie_bits_d2(const std::uint64_t word,
                                              const std::size_t bit0) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kTieLut[(word >> bit0) & 15]));
}

/// Running-max update for a committed clean group that raises the record:
/// the vector decisions stand (they never read the max), so only this
/// bookkeeping needs ball order — commit_known's strict compare replayed
/// over the four committed (dest, num, cap) triples against the live
/// record. Outlined for the same reason as the replay functions; without
/// it a fresh run's warm-up (where the record rises every few groups)
/// costs a full scalar replay per record move.
NUBB_NOINLINE void raise_max4(const std::uint64_t* const dA, const std::uint64_t* const ndA,
                              const std::uint64_t* const cdA, RunTotals& t) {
  for (std::size_t j = 0; j < 4; ++j) {
    if (ndA[j] * t.max_cap > t.max_num * cdA[j]) {
      t.max_num = ndA[j];
      t.max_cap = cdA[j];
      t.argmax = dA[j];
    }
  }
}

/// Scalar replay of one dirty group, outlined so the clean path carries no
/// scalar candidate values or slot addresses across the branch — inlining
/// this forced the compiler to precompute (and spill) all of them on every
/// clean iteration, which roughly doubled the hot loop's instruction count.
template <TieBreak TB, class Sizes>
NUBB_NOINLINE void replay_group_d2(BinSlot* const slots, const std::uint32_t* const cand,
                                   const std::uint64_t* const tie, const std::size_t b,
                                   const Sizes sz, RunTotals& t) {
  for (std::size_t j = 0; j < 4; ++j) {
    const std::size_t ball = b + j;
    const bool tie_bit = ((tie[ball >> 6] >> (ball & 63)) & 1) != 0;
    detail::resolve_ball_d2_w<true, TB>(slots, cand[2 * ball], cand[2 * ball + 1],
                                        sz.get(ball), tie_bit, t);
  }
}

/// Vector decisions and hazard masks for one group of four Greedy[2] balls,
/// shared by the straight-line and the fused (fill-interleaved) loops — the
/// commit policy stays at the call sites.
struct GroupD2 {
  __m256i destv;   ///< chosen destination index per lane (as u64 lanes)
  __m256i nd;      ///< winner's post-allocation numerator
  __m256i capd;    ///< winner's capacity
  __m256i bad;     ///< any cross-ball candidate collision (32-bit lane masks)
  __m256i exceed;  ///< any lane beating the group-start running max
};

template <TieBreak TB, MulW MW, class Sizes>
NUBB_ALWAYS_INLINE inline GroupD2 decide_group_d2(BinSlot* const slots,
                                                  const std::uint32_t* const cb,
                                                  const std::uint64_t tie_word,
                                                  const std::size_t bit0, const Sizes sz,
                                                  const std::size_t b, const __m256i vmaxn,
                                                  const __m256i vmaxc) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i cv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cb));
  // A group is dirty unless its eight candidates are pairwise distinct — a
  // superset of every hazard (a duplicate pair, or one ball's destination
  // among another's candidates, since each destination IS one of its ball's
  // candidates). Compared against the circular lane rotations by 1..4:
  // distances 1..3 cover 24 of the 28 lane pairs, distance 4 (the half swap
  // itself) the rest. The rotations use only immediate-form shuffles, so
  // the test holds no constant registers. False positives only cost the
  // scalar fallback, never correctness.
  const __m256i swp = _mm256_permute2x128_si256(cv, cv, 0x01);
  __m256i bad = _mm256_cmpeq_epi32(cv, _mm256_alignr_epi8(swp, cv, 4));
  bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(cv, _mm256_permute4x64_epi64(cv, 0x39)));
  bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(cv, _mm256_alignr_epi8(swp, cv, 12)));
  bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(cv, swp));
  // Candidate 0 / candidate 1 of each ball as 64-bit lanes: they are the
  // even / odd u32 lanes of cv, so a mask and a shift beat any shuffle.
  const __m256i i0 = _mm256_and_si256(cv, lo32);
  const __m256i i1 = _mm256_srli_epi64(cv, 32);
  __m256i num0;
  __m256i cap0;
  __m256i num1;
  __m256i cap1;
  load_slots4(slots, cb[0], cb[2], cb[4], cb[6], num0, cap0);
  load_slots4(slots, cb[1], cb[3], cb[5], cb[7], num1, cap1);
  const __m256i w = load_w(sz, b);
  const __m256i n0 = _mm256_add_epi64(num0, w);
  const __m256i n1 = _mm256_add_epi64(num1, w);
  // resolve_ball_d2_w's compare: lhs = n1 * cap0, rhs = n0 * cap1.
  const __m256i lhs = mul_cap<MW>(n1, cap0);
  const __m256i rhs = mul_cap<MW>(n0, cap1);
  const __m256i c1_less = prod_lt<MW>(lhs, rhs);
  __m256i pick1;
  if constexpr (TB == TieBreak::kFirstChoice) {
    pick1 = c1_less;
  } else {
    const __m256i equal = _mm256_cmpeq_epi64(lhs, rhs);
    const __m256i tmask = tie_bits_d2(tie_word, bit0);
    if constexpr (TB == TieBreak::kUniform) {
      pick1 = _mm256_or_si256(c1_less, _mm256_and_si256(equal, tmask));
    } else {
      const __m256i cap_gt = prod_gt<MW>(cap1, cap0);
      const __m256i cap_eq = _mm256_cmpeq_epi64(cap1, cap0);
      pick1 = _mm256_or_si256(
          c1_less,
          _mm256_and_si256(equal, _mm256_or_si256(cap_gt, _mm256_and_si256(cap_eq, tmask))));
    }
  }
  const __m256i destv = csel64(pick1, i1, i0);
  const __m256i nd = csel64(pick1, n1, n0);
  const __m256i capd = csel64(pick1, cap1, cap0);
  // Would any ball raise the running maximum? Tested against the
  // group-start max, which is exact: the max only moves when a commit
  // exceeds it, so if no lane exceeds the start value it never moves during
  // the group. Same Fast64 cross products as commit_known. A raise does NOT
  // dirty the group — decisions never read the max — it only routes the
  // commit through the scalar bookkeeping at the call site.
  const __m256i exceed = prod_gt<MW>(mul_cap<MW>(nd, vmaxc), mul_cap<MW>(vmaxn, capd));
  return {destv, nd, capd, bad, exceed};
}

/// Greedy[2] bulk loop, groups of four balls. Fast64 only.
template <TieBreak TB, MulW MW, class Sizes>
NUBB_NOINLINE RunTotals run_v2_d2_avx2(BinSlot* const slots,
                                       const std::uint64_t* const threshold,
                                       const std::uint32_t* const alias, const std::uint64_t n,
                                       const std::uint64_t count, const Sizes sz,
                                       std::uint32_t* const cand, std::uint64_t* const tie,
                                       const bool prefetch, RunTotals t,
                                       Xoshiro256StarStar& rng) {
  // Prefetching an L1-resident slot array only burns front-end slots; the
  // group loop is issue-bound, so gate it on the array actually spilling L1.
  const bool want_pf = prefetch && n * sizeof(BinSlot) > (std::size_t{1} << 15);
  for (std::uint64_t done = 0; done < count;) {
    const auto nb = static_cast<std::size_t>(
        std::min<std::uint64_t>(PlacementKernel::kStreamBlock, count - done));
    sz.fill(rng, nb);
    fill_candidates_avx2(threshold, alias, n, cand, 2 * nb, rng);
    detail::fill_ties_v2(tie, (nb + 63) / 64, rng);
    const std::size_t pf_end = prefetch_end(want_pf, nb);
    const std::size_t nb4 = nb & ~std::size_t{3};
    // Running max as broadcast lanes, refreshed only on the paths that can
    // move it: a dirty replay, a clean group whose exceed mask fired, or the
    // previous block's tail.
    __m256i vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
    __m256i vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
    std::size_t b = 0;
    // Clean commits accumulate the total in a register; t.total is only
    // touched on the cold paths (keeping t addressable for the replay call
    // otherwise forces a memory read-modify-write every clean group).
    std::uint64_t total_acc = 0;
    for (; b < nb4; b += 4) {
      if (b < pf_end) {
        for (std::size_t i = 0; i < 4; ++i) {
          const std::size_t bb = b + kPrefetchAhead + i;
          if (bb < nb) {
            prefetch_read(&slots[cand[2 * bb]]);
            prefetch_read(&slots[cand[2 * bb + 1]]);
          }
        }
      }
      const std::uint32_t* const cb = cand + 2 * b;
      const GroupD2 gr =
          decide_group_d2<TB, MW>(slots, cb, tie[b >> 6], b & 63, sz, b, vmaxn, vmaxc);
      if (_mm256_testz_si256(gr.bad, gr.bad)) [[likely]] {
        // Clean group: the vector decisions are the serial decisions and no
        // destination collides with another ball's candidates (so the four
        // stores are to distinct bins) — commit is four numerator stores
        // plus the total, with the rare record move replayed in ball order.
        alignas(32) std::uint64_t dA[4];
        alignas(32) std::uint64_t ndA[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(dA), gr.destv);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ndA), gr.nd);
        slots[dA[0]].num = ndA[0];
        slots[dA[1]].num = ndA[1];
        slots[dA[2]].num = ndA[2];
        slots[dA[3]].num = ndA[3];
        total_acc += sz.get(b) + sz.get(b + 1) + sz.get(b + 2) + sz.get(b + 3);
        if (!_mm256_testz_si256(gr.exceed, gr.exceed)) [[unlikely]] {
          alignas(32) std::uint64_t cdA[4];
          _mm256_store_si256(reinterpret_cast<__m256i*>(cdA), gr.capd);
          raise_max4(dA, ndA, cdA, t);
          vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
          vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
        }
      } else {
        // Dirty group: replay all four balls through the exact scalar body
        // in serial order against live slots.
        t.total += total_acc;
        total_acc = 0;
        replay_group_d2<TB>(slots, cand, tie, b, sz, t);
        vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
        vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
      }
    }
    t.total += total_acc;
    for (; b < nb; ++b) {
      const bool tie_bit = ((tie[b >> 6] >> (b & 63)) & 1) != 0;
      detail::resolve_ball_d2_w<true, TB>(slots, cand[2 * b], cand[2 * b + 1], sz.get(b),
                                          tie_bit, t);
    }
    done += nb;
  }
  return t;
}

/// Greedy[2] bulk loop with the candidate phase of block k+1 interleaved
/// into the resolve groups of block k. Unit balls, alias sampler, small-n
/// (scalar fused fill) regime only.
///
/// The two phases are independent instruction streams: resolve consumes no
/// RNG, and the next block's draws touch only the generator, the alias
/// table and the back candidate buffer. Issuing eight fused draws inside
/// each group iteration therefore changes nothing about the draw sequence —
/// the words leave the generator in exactly the serial order — but lets the
/// out-of-order core hide the generator's serial recurrence (latency-bound,
/// scalar ports) under the shuffle-heavy vector resolve, instead of paying
/// the two phases back to back. Ties for block k+1 are drawn after its last
/// candidate, between the resolve loops, exactly where the serial stream
/// draws them. The caller provides candidate and tie buffers with room for
/// two blocks (front and back halves are swapped each block).
template <TieBreak TB, MulW MW>
NUBB_NOINLINE RunTotals run_v2_d2_avx2_fused(BinSlot* const slots,
                                             const std::uint64_t* const threshold,
                                             const std::uint32_t* const alias,
                                             const std::uint64_t n, const std::uint64_t count,
                                             std::uint32_t* const cand,
                                             std::uint64_t* const tie, RunTotals t,
                                             Xoshiro256StarStar& rng) {
  constexpr std::size_t kBlock = PlacementKernel::kStreamBlock;
  constexpr UnitSizes sz{};
  const std::uint64_t reject = (0 - n) % n;
  // One local generator for the whole run: its address never escapes (the
  // replay and tail paths consume no RNG), so the four state words stay in
  // registers across fill slices, exactly as in fill_candidates_v2.
  Xoshiro256StarStar local = rng;
  std::uint32_t* curc = cand;
  std::uint32_t* nxtc = cand + 2 * kBlock;
  std::uint64_t* curt = tie;
  std::uint64_t* nxtt = tie + kBlock / 64;
  auto nb = static_cast<std::size_t>(std::min<std::uint64_t>(kBlock, count));
  for (std::size_t i = 0; i < 2 * nb; ++i) {
    curc[i] = static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
  }
  for (std::size_t i = 0; i < (nb + 63) / 64; ++i) curt[i] = local.next();
  for (std::uint64_t done = 0;;) {
    const std::uint64_t next_done = done + nb;
    const auto nn = static_cast<std::size_t>(
        next_done < count ? std::min<std::uint64_t>(kBlock, count - next_done) : 0);
    const std::size_t fill_n = 2 * nn;
    std::size_t fill_i = 0;
    const std::size_t nb4 = nb & ~std::size_t{3};
    __m256i vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
    __m256i vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
    std::size_t b = 0;
    std::uint64_t total_acc = 0;
    for (; b < nb4; b += 4) {
      // Fill slice: eight draws of block k+1 (64 groups x 8 = 512 = 2 x
      // kBlock covers a full next block exactly).
      const std::size_t f_end = std::min(fill_i + 8, fill_n);
      for (; fill_i < f_end; ++fill_i) {
        nxtc[fill_i] =
            static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
      }
      const GroupD2 gr = decide_group_d2<TB, MW>(slots, curc + 2 * b, curt[b >> 6], b & 63,
                                                 sz, b, vmaxn, vmaxc);
      if (_mm256_testz_si256(gr.bad, gr.bad)) [[likely]] {
        alignas(32) std::uint64_t dA[4];
        alignas(32) std::uint64_t ndA[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(dA), gr.destv);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ndA), gr.nd);
        slots[dA[0]].num = ndA[0];
        slots[dA[1]].num = ndA[1];
        slots[dA[2]].num = ndA[2];
        slots[dA[3]].num = ndA[3];
        total_acc += 4;
        if (!_mm256_testz_si256(gr.exceed, gr.exceed)) [[unlikely]] {
          alignas(32) std::uint64_t cdA[4];
          _mm256_store_si256(reinterpret_cast<__m256i*>(cdA), gr.capd);
          raise_max4(dA, ndA, cdA, t);
          vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
          vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
        }
      } else {
        t.total += total_acc;
        total_acc = 0;
        replay_group_d2<TB>(slots, curc, curt, b, sz, t);
        vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
        vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
      }
    }
    t.total += total_acc;
    for (; b < nb; ++b) {
      const bool tie_bit = ((curt[b >> 6] >> (b & 63)) & 1) != 0;
      detail::resolve_ball_d2_w<true, TB>(slots, curc[2 * b], curc[2 * b + 1], 1, tie_bit,
                                          t);
    }
    // A short current block has fewer group iterations than fill slices —
    // finish any candidate draws the loop did not reach.
    for (; fill_i < fill_n; ++fill_i) {
      nxtc[fill_i] =
          static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
    }
    done = next_done;
    if (nn == 0) break;
    for (std::size_t i = 0; i < (nn + 63) / 64; ++i) nxtt[i] = local.next();
    std::swap(curc, nxtc);
    std::swap(curt, nxtt);
    nb = nn;
  }
  rng = local;
  return t;
}

/// Scalar replay of one dirty group (see replay_group_d2 for why this is
/// outlined).
template <TieBreak TB, class Sizes>
NUBB_NOINLINE void replay_group_d3(BinSlot* const slots, const std::uint32_t* const cand,
                                   const std::uint64_t* const tie, const std::size_t b,
                                   const Sizes sz, RunTotals& t) {
  for (std::size_t j = 0; j < 4; ++j) {
    const std::size_t ball = b + j;
    const auto tie_field =
        static_cast<std::uint32_t>(tie[ball >> 1] >> ((ball & 1) * 32));
    detail::resolve_ball_d3_w<true, TB>(slots, cand[3 * ball], cand[3 * ball + 1],
                                        cand[3 * ball + 2], sz.get(ball), tie_field, t);
  }
}

/// Greedy[3] bulk loop, groups of four balls. Fast64 only.
template <TieBreak TB, MulW MW, class Sizes>
NUBB_NOINLINE RunTotals run_v2_d3_avx2(BinSlot* const slots,
                                       const std::uint64_t* const threshold,
                                       const std::uint32_t* const alias, const std::uint64_t n,
                                       const std::uint64_t count, const Sizes sz,
                                       std::uint32_t* const cand, std::uint64_t* const tie,
                                       const bool prefetch, RunTotals t,
                                       Xoshiro256StarStar& rng) {
  // See the d = 2 loop: prefetching an L1-resident slot array only costs
  // front-end slots in an issue-bound loop.
  const bool want_pf = prefetch && n * sizeof(BinSlot) > (std::size_t{1} << 15);
  for (std::uint64_t done = 0; done < count;) {
    const auto nb = static_cast<std::size_t>(
        std::min<std::uint64_t>(PlacementKernel::kStreamBlock, count - done));
    sz.fill(rng, nb);
    fill_candidates_avx2(threshold, alias, n, cand, 3 * nb, rng);
    detail::fill_ties_v2(tie, (nb + 1) / 2, rng);
    const std::size_t pf_end = prefetch_end(want_pf, nb);
    const std::size_t nb4 = nb & ~std::size_t{3};
    // Running max as broadcast lanes (see the d = 2 loop).
    __m256i vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
    __m256i vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
    std::size_t b = 0;
    // Clean commits accumulate the total in a register; t.total is only
    // touched on the cold paths (keeping t addressable for the replay call
    // otherwise forces a memory read-modify-write every clean group).
    std::uint64_t total_acc = 0;
    for (; b < nb4; b += 4) {
      if (b < pf_end) {
        for (std::size_t i = 0; i < 4; ++i) {
          const std::size_t bb = b + kPrefetchAhead + i;
          if (bb < nb) {
            prefetch_read(&slots[cand[3 * bb]]);
            prefetch_read(&slots[cand[3 * bb + 1]]);
            prefetch_read(&slots[cand[3 * bb + 2]]);
          }
        }
      }
      // Candidate k of balls b..b+3, de-strided with scalar inserts (the
      // values are hot in L1 from the fill; a strided gather would cost its
      // full latency for nothing).
      const std::uint32_t* const cb = cand + 3 * b;
      const __m256i i0 = _mm256_set_epi64x(cb[9], cb[6], cb[3], cb[0]);
      const __m256i i1 = _mm256_set_epi64x(cb[10], cb[7], cb[4], cb[1]);
      const __m256i i2 = _mm256_set_epi64x(cb[11], cb[8], cb[5], cb[2]);
      __m256i num0;
      __m256i cap0;
      __m256i num1;
      __m256i cap1;
      __m256i num2;
      __m256i cap2;
      load_slots4(slots, cb[0], cb[3], cb[6], cb[9], num0, cap0);
      load_slots4(slots, cb[1], cb[4], cb[7], cb[10], num1, cap1);
      load_slots4(slots, cb[2], cb[5], cb[8], cb[11], num2, cap2);
      const __m256i w = load_w(sz, b);
      const __m256i n0 = _mm256_add_epi64(num0, w);
      const __m256i n1 = _mm256_add_epi64(num1, w);
      const __m256i n2 = _mm256_add_epi64(num2, w);
      __m256i destv;
      __m256i nd;    // winner's post-allocation numerator
      __m256i capd;  // winner's capacity
      if constexpr (TB == TieBreak::kFirstChoice) {
        // Strict-less fold, as in the scalar body: lhs = n_k * mp,
        // rhs = mn * cap_k.
        __m256i m = i0;
        __m256i mn = n0;
        __m256i mp = cap0;
        __m256i less = prod_lt<MW>(mul_cap<MW>(n1, mp), mul_cap<MW>(mn, cap1));
        m = csel64(less, i1, m);
        mn = csel64(less, n1, mn);
        mp = csel64(less, cap1, mp);
        less = prod_lt<MW>(mul_cap<MW>(n2, mp), mul_cap<MW>(mn, cap2));
        destv = csel64(less, i2, m);
        nd = csel64(less, n2, mn);
        capd = csel64(less, cap2, mp);
      } else {
        const __m256i one64 = _mm256_set1_epi64x(1);
        const __m256i three64 = _mm256_set1_epi64x(3);
        const __m256i zero = _mm256_setzero_si256();
        const __m256i ones = _mm256_cmpeq_epi64(zero, zero);
        const __m256i magic3 = _mm256_set1_epi64x(0xAAAAAAABll);  // u32 divide-by-3
        // The six relation bits of resolve_ball_d3_w, four balls at a time.
        __m256i a;  // K1 < K0
        __m256i bm;  // K2 < K0
        __m256i c;  // K2 < K1
        __m256i e;  // K1 == K0
        __m256i f;  // K2 == K0
        __m256i g;  // K2 == K1
        const __m256i l10 = mul_cap<MW>(n1, cap0);
        const __m256i r10 = mul_cap<MW>(n0, cap1);
        const __m256i l20 = mul_cap<MW>(n2, cap0);
        const __m256i r20 = mul_cap<MW>(n0, cap2);
        const __m256i l21 = mul_cap<MW>(n2, cap1);
        const __m256i r21 = mul_cap<MW>(n1, cap2);
        if constexpr (TB == TieBreak::kPreferLargerCapacity) {
          // key_beats_tied: beats = lhs < rhs + (cap_a > cap_b). Subtracting
          // the all-ones compare mask adds the 1; the Fast64 gate caps every
          // cross product at 2^64 - 2, so the bump cannot wrap.
          a = prod_lt<MW>(l10, _mm256_sub_epi64(r10, prod_gt<MW>(cap1, cap0)));
          bm = prod_lt<MW>(l20, _mm256_sub_epi64(r20, prod_gt<MW>(cap2, cap0)));
          c = prod_lt<MW>(l21, _mm256_sub_epi64(r21, prod_gt<MW>(cap2, cap1)));
          e = _mm256_and_si256(_mm256_cmpeq_epi64(l10, r10), _mm256_cmpeq_epi64(cap1, cap0));
          f = _mm256_and_si256(_mm256_cmpeq_epi64(l20, r20), _mm256_cmpeq_epi64(cap2, cap0));
          g = _mm256_and_si256(_mm256_cmpeq_epi64(l21, r21), _mm256_cmpeq_epi64(cap2, cap1));
        } else {
          a = prod_lt<MW>(l10, r10);
          bm = prod_lt<MW>(l20, r20);
          c = prod_lt<MW>(l21, r21);
          e = _mm256_cmpeq_epi64(l10, r10);
          f = _mm256_cmpeq_epi64(l20, r20);
          g = _mm256_cmpeq_epi64(l21, r21);
        }
        const __m256i in0 = _mm256_andnot_si256(_mm256_or_si256(a, bm), ones);
        const __m256i in1 =
            _mm256_and_si256(_mm256_or_si256(a, e), _mm256_xor_si256(c, ones));
        const __m256i in2 = _mm256_and_si256(_mm256_or_si256(bm, f), _mm256_or_si256(c, g));
        // Masks are 0 / -1 per lane: negating their sum gives the class
        // size bc in 1..3.
        const __m256i cnt =
            _mm256_sub_epi64(zero, _mm256_add_epi64(_mm256_add_epi64(in0, in1), in2));
        // Tie fields of balls b..b+3: the packed u32 halves form a little-
        // endian u32 array, so one 16-byte load covers the group (b is a
        // multiple of 4, so it never splits a tie word).
        const __m128i tie32 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(reinterpret_cast<const char*>(tie) + 4 * b));
        const __m256i tie64 = _mm256_cvtepu32_epi64(tie32);
        // tie % 3 via the u32 magic multiply (tie < 2^32, so the low-half
        // mul_epu32 product is the full product).
        const __m256i q = _mm256_srli_epi64(_mm256_mul_epu32(tie64, magic3), 33);
        const __m256i r3 =
            _mm256_sub_epi64(tie64, _mm256_add_epi64(q, _mm256_slli_epi64(q, 1)));
        const __m256i j64 = csel64(_mm256_cmpeq_epi64(cnt, three64), r3,
                                   _mm256_and_si256(tie64, _mm256_sub_epi64(cnt, one64)));
        const __m256i in0c = _mm256_and_si256(in0, one64);  // 0 or 1
        const __m256i in1c = _mm256_and_si256(in1, one64);
        const __m256i pick1 = _mm256_and_si256(in1, _mm256_cmpeq_epi64(j64, in0c));
        const __m256i pick2 =
            _mm256_and_si256(in2, _mm256_cmpeq_epi64(j64, _mm256_add_epi64(in0c, in1c)));
        destv = csel64(pick2, i2, csel64(pick1, i1, i0));
        nd = csel64(pick2, n2, csel64(pick1, n1, n0));
        capd = csel64(pick2, cap2, csel64(pick1, cap1, cap0));
      }
      // Group-dirty test, exactly as in the d = 2 loop: duplicates, any
      // destination among another ball's candidates (symmetric rotation
      // superset), or any ball raising the group-start running max.
      __m256i bad = _mm256_or_si256(_mm256_or_si256(_mm256_cmpeq_epi64(i0, i1),
                                                    _mm256_cmpeq_epi64(i0, i2)),
                                    _mm256_cmpeq_epi64(i1, i2));
      const __m256i r1 = _mm256_permute4x64_epi64(destv, _MM_SHUFFLE(0, 3, 2, 1));
      const __m256i r2 = _mm256_permute4x64_epi64(destv, _MM_SHUFFLE(1, 0, 3, 2));
      const __m256i r3 = _mm256_permute4x64_epi64(destv, _MM_SHUFFLE(2, 1, 0, 3));
      bad = _mm256_or_si256(
          bad, _mm256_or_si256(_mm256_or_si256(_mm256_cmpeq_epi64(r1, i0),
                                               _mm256_cmpeq_epi64(r1, i1)),
                               _mm256_cmpeq_epi64(r1, i2)));
      bad = _mm256_or_si256(
          bad, _mm256_or_si256(_mm256_or_si256(_mm256_cmpeq_epi64(r2, i0),
                                               _mm256_cmpeq_epi64(r2, i1)),
                               _mm256_cmpeq_epi64(r2, i2)));
      bad = _mm256_or_si256(
          bad, _mm256_or_si256(_mm256_or_si256(_mm256_cmpeq_epi64(r3, i0),
                                               _mm256_cmpeq_epi64(r3, i1)),
                               _mm256_cmpeq_epi64(r3, i2)));
      // A record raise routes through raise_max4, not the replay — see the
      // d = 2 loop.
      const __m256i exceed =
          prod_gt<MW>(mul_cap<MW>(nd, vmaxc), mul_cap<MW>(vmaxn, capd));
      if (_mm256_testz_si256(bad, bad)) [[likely]] {
        alignas(32) std::uint64_t dA[4];
        alignas(32) std::uint64_t ndA[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(dA), destv);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ndA), nd);
        slots[dA[0]].num = ndA[0];
        slots[dA[1]].num = ndA[1];
        slots[dA[2]].num = ndA[2];
        slots[dA[3]].num = ndA[3];
        total_acc += sz.get(b) + sz.get(b + 1) + sz.get(b + 2) + sz.get(b + 3);
        if (!_mm256_testz_si256(exceed, exceed)) [[unlikely]] {
          alignas(32) std::uint64_t cdA[4];
          _mm256_store_si256(reinterpret_cast<__m256i*>(cdA), capd);
          raise_max4(dA, ndA, cdA, t);
          vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
          vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
        }
      } else {
        t.total += total_acc;
        total_acc = 0;
        replay_group_d3<TB>(slots, cand, tie, b, sz, t);
        vmaxn = _mm256_set1_epi64x(static_cast<long long>(t.max_num));
        vmaxc = _mm256_set1_epi64x(static_cast<long long>(t.max_cap));
      }
    }
    t.total += total_acc;
    for (; b < nb; ++b) {
      const auto tie_field = static_cast<std::uint32_t>(tie[b >> 1] >> ((b & 1) * 32));
      detail::resolve_ball_d3_w<true, TB>(slots, cand[3 * b], cand[3 * b + 1],
                                          cand[3 * b + 2], sz.get(b), tie_field, t);
    }
    done += nb;
  }
  return t;
}

/// Single choice: the resolve is one commit per ball — only the candidate
/// fill vectorises.
template <class Sizes>
NUBB_NOINLINE RunTotals run_v2_d1_avx2(BinSlot* const slots,
                                       const std::uint64_t* const threshold,
                                       const std::uint32_t* const alias, const std::uint64_t n,
                                       const std::uint64_t count, const Sizes sz,
                                       std::uint32_t* const cand, const bool prefetch,
                                       RunTotals t, Xoshiro256StarStar& rng) {
  for (std::uint64_t done = 0; done < count;) {
    const auto nb = static_cast<std::size_t>(
        std::min<std::uint64_t>(PlacementKernel::kStreamBlock, count - done));
    sz.fill(rng, nb);
    fill_candidates_avx2(threshold, alias, n, cand, nb, rng);
    const std::size_t pf_end = prefetch_end(prefetch, nb);
    for (std::size_t b = 0; b < nb; ++b) {
      if (b < pf_end) prefetch_read(&slots[cand[b + kPrefetchAhead]]);
      detail::commit_amount<true>(slots, cand[b], sz.get(b), t);
    }
    done += nb;
  }
  return t;
}

/// General d >= 4: the decide fold is a data-dependent loop over d
/// candidates (not worth vectorising at the paper's operating points) —
/// only the candidate fill runs wide. Mirrors the scalar run_v2_generic,
/// cross-ball prefetch included.
template <TieBreak TB, class Sizes>
NUBB_NOINLINE RunTotals run_v2_generic_avx2(
    BinSlot* const slots, const std::uint64_t* const threshold,
    const std::uint32_t* const alias, const std::uint64_t n, std::size_t* const choices,
    const std::uint32_t d, const std::uint64_t count, const Sizes sz,
    std::uint32_t* const cand, std::uint64_t* const tie, const bool prefetch, RunTotals t,
    Xoshiro256StarStar& rng) {
  for (std::uint64_t done = 0; done < count;) {
    const auto nb = static_cast<std::size_t>(
        std::min<std::uint64_t>(PlacementKernel::kStreamBlock, count - done));
    sz.fill(rng, nb);
    fill_candidates_avx2(threshold, alias, n, cand, d * nb, rng);
    detail::fill_ties_v2(tie, nb, rng);
    const std::size_t pf_end = prefetch_end(prefetch, nb);
    for (std::size_t b = 0; b < nb; ++b) {
      if (b < pf_end) {
        const std::uint32_t* const ahead = cand + d * (b + kPrefetchAhead);
        for (std::uint32_t i = 0; i < d; ++i) prefetch_read(&slots[ahead[i]]);
      }
      const std::uint64_t w = sz.get(b);
      for (std::uint32_t i = 0; i < d; ++i) {
        choices[i] = static_cast<std::size_t>(cand[d * b + i]);
      }
      const std::size_t dest = detail::decide_destination_pretied<true, TB>(
          detail::SlotLoadView{slots}, choices, d, w, tie[b]);
      detail::commit_amount<true>(slots, dest, w, t);
    }
    done += nb;
  }
  return t;
}

}  // namespace

/// AVX2 twin of run_loop_v2: same buffer sizing, same flush-at-the-end
/// structure, Fast64 hardwired (select_for_tie_break never installs the
/// AVX2 entry points on a 128-bit-width kernel).
template <TieBreak TB, class Sizes>
void PlacementKernel::run_loop_v2_avx2(PlacementKernel& k, std::uint64_t count, Sizes sz,
                                       Xoshiro256StarStar& rng) {
  const AliasTable* const table = k.table_;
  const std::uint64_t* const threshold =
      table != nullptr ? table->threshold_data() : nullptr;
  const std::uint32_t* const alias = table != nullptr ? table->alias_data() : nullptr;
  const std::uint64_t n = k.n_;
  BinSlot* const slots = k.slots_;

  // d = 2 double-buffers the candidate block for the fused fill+resolve
  // loop (the tie buffer already holds kStreamBlock words — room enough for
  // the two 4-word halves it needs).
  const std::size_t need = kStreamBlock * k.d_ * (k.d_ == 2 ? 2 : 1);
  if (k.v2_cand_.size() < need) k.v2_cand_.resize(need);
  std::uint32_t* const cand = k.v2_cand_.data();
  if (k.d_ >= 2 && k.v2_tie_.size() < kStreamBlock) k.v2_tie_.resize(kStreamBlock);
  std::uint64_t* const tie = k.v2_tie_.data();

  detail::RunTotals t{*k.total_, k.max_load_->balls, k.max_load_->capacity, *k.argmax_};
  const bool pf = k.prefetch_;
  if (k.d_ == 2) {
    // Unit balls under a small alias table take the fused loop: the fill is
    // in its scalar regime there (see fill_candidates_avx2), which is what
    // the interleave hides. Weighted runs would need a second size buffer
    // for no measured gain; large tables fill through the vector gather
    // path, which must stay a block-bulk pass.
    const bool fuse =
        std::is_same_v<Sizes, detail::UnitSizes> && threshold != nullptr && n <= 2048;
    switch (mul_width(k.caps_u32_, slots, n, count, sz)) {
      case MulW::kVals32:
        t = fuse ? run_v2_d2_avx2_fused<TB, MulW::kVals32>(slots, threshold, alias, n,
                                                           count, cand, tie, t, rng)
                 : run_v2_d2_avx2<TB, MulW::kVals32>(slots, threshold, alias, n, count, sz,
                                                     cand, tie, pf, t, rng);
        break;
      case MulW::kCaps32:
        t = fuse ? run_v2_d2_avx2_fused<TB, MulW::kCaps32>(slots, threshold, alias, n,
                                                           count, cand, tie, t, rng)
                 : run_v2_d2_avx2<TB, MulW::kCaps32>(slots, threshold, alias, n, count, sz,
                                                     cand, tie, pf, t, rng);
        break;
      case MulW::kFull:
        t = fuse ? run_v2_d2_avx2_fused<TB, MulW::kFull>(slots, threshold, alias, n, count,
                                                         cand, tie, t, rng)
                 : run_v2_d2_avx2<TB, MulW::kFull>(slots, threshold, alias, n, count, sz,
                                                   cand, tie, pf, t, rng);
        break;
    }
  } else if (k.d_ == 3) {
    switch (mul_width(k.caps_u32_, slots, n, count, sz)) {
      case MulW::kVals32:
        t = run_v2_d3_avx2<TB, MulW::kVals32>(slots, threshold, alias, n, count, sz, cand,
                                              tie, pf, t, rng);
        break;
      case MulW::kCaps32:
        t = run_v2_d3_avx2<TB, MulW::kCaps32>(slots, threshold, alias, n, count, sz, cand,
                                              tie, pf, t, rng);
        break;
      case MulW::kFull:
        t = run_v2_d3_avx2<TB, MulW::kFull>(slots, threshold, alias, n, count, sz, cand,
                                            tie, pf, t, rng);
        break;
    }
  } else if (k.d_ == 1) {
    t = run_v2_d1_avx2(slots, threshold, alias, n, count, sz, cand, pf, t, rng);
  } else {
    t = run_v2_generic_avx2<TB>(slots, threshold, alias, n, k.choices_, k.d_, count, sz,
                                cand, tie, pf, t, rng);
  }

  *k.total_ = t.total;
  *k.max_load_ = Load{t.max_num, t.max_cap};
  *k.argmax_ = t.argmax;
}

template <TieBreak TB>
void PlacementKernel::run_v2_avx2_impl(PlacementKernel& k, std::uint64_t count,
                                       Xoshiro256StarStar& rng) {
  run_loop_v2_avx2<TB>(k, count, detail::UnitSizes{}, rng);
}

template <TieBreak TB>
void PlacementKernel::run_weighted_v2_avx2_impl(PlacementKernel& k, std::uint64_t count,
                                                const BallSizeModel& sizes,
                                                Xoshiro256StarStar& rng) {
  if (k.v2_sizes_.size() < kStreamBlock) k.v2_sizes_.resize(kStreamBlock);
  run_loop_v2_avx2<TB>(k, count, detail::ModelSizes{&sizes, k.v2_sizes_.data()}, rng);
}

// The entry points select_for_tie_break installs (access checking does not
// apply to explicit instantiations, so the private member templates can be
// instantiated from here).
template void PlacementKernel::run_v2_avx2_impl<TieBreak::kPreferLargerCapacity>(
    PlacementKernel&, std::uint64_t, Xoshiro256StarStar&);
template void PlacementKernel::run_v2_avx2_impl<TieBreak::kUniform>(PlacementKernel&,
                                                                    std::uint64_t,
                                                                    Xoshiro256StarStar&);
template void PlacementKernel::run_v2_avx2_impl<TieBreak::kFirstChoice>(PlacementKernel&,
                                                                        std::uint64_t,
                                                                        Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kPreferLargerCapacity>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kUniform>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kFirstChoice>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);

}  // namespace nubb

#else  // !__AVX2__

namespace nubb {

// select_for_tie_break never installs these when simd_kernels_compiled() is
// false, so reaching a stub is a dispatch bug, not a user error.
template <TieBreak TB>
void PlacementKernel::run_v2_avx2_impl(PlacementKernel&, std::uint64_t,
                                       Xoshiro256StarStar&) {
  NUBB_REQUIRE_MSG(false, "AVX2 placement kernels were not compiled");
}

template <TieBreak TB>
void PlacementKernel::run_weighted_v2_avx2_impl(PlacementKernel&, std::uint64_t,
                                                const BallSizeModel&, Xoshiro256StarStar&) {
  NUBB_REQUIRE_MSG(false, "AVX2 placement kernels were not compiled");
}

template void PlacementKernel::run_v2_avx2_impl<TieBreak::kPreferLargerCapacity>(
    PlacementKernel&, std::uint64_t, Xoshiro256StarStar&);
template void PlacementKernel::run_v2_avx2_impl<TieBreak::kUniform>(PlacementKernel&,
                                                                    std::uint64_t,
                                                                    Xoshiro256StarStar&);
template void PlacementKernel::run_v2_avx2_impl<TieBreak::kFirstChoice>(PlacementKernel&,
                                                                        std::uint64_t,
                                                                        Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kPreferLargerCapacity>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kUniform>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);
template void PlacementKernel::run_weighted_v2_avx2_impl<TieBreak::kFirstChoice>(
    PlacementKernel&, std::uint64_t, const BallSizeModel&, Xoshiro256StarStar&);

}  // namespace nubb

#endif  // __AVX2__
