#pragma once

/// \file load_vector.hpp
/// The analysis machinery of Section 2: normalised load vectors, slot load
/// vectors (each bin of capacity c viewed as c unit slots filled round-robin)
/// and the majorisation partial order. Used by the property tests and by the
/// Lemma-1 domination bench; the protocol itself never looks at slots.

#include <cstdint>
#include <vector>

#include "core/bin_array.hpp"

namespace nubb {

/// Loads of all bins sorted in non-increasing order (the paper's normalised
/// load vector L-bar).
std::vector<double> normalized_load_vector(const BinArray& bins);

/// One slot of the slot load vector: its ball count and owning bin.
struct Slot {
  std::uint64_t balls = 0;     ///< balls in this slot under round-robin fill
  std::uint32_t bin = 0;       ///< owning bin index b(i)
};

/// Slot load vector S in bin order (Section 2): bin i with l balls has its
/// first (l mod c_i) slots holding ceil(l/c_i) balls and the remaining slots
/// holding floor(l/c_i).
std::vector<Slot> slot_load_vector(const BinArray& bins);

/// Normalised slot load vector S-bar: slots sorted by ball count descending;
/// among slots with equal ball count, slots of bins with *higher bin load*
/// come first (the paper's explicit tie rule). Returns just the ball counts,
/// which is what majorisation consumes.
std::vector<std::uint64_t> normalized_slot_load_vector(const BinArray& bins);

/// Majorisation U >= V: both vectors are normalised (sorted descending,
/// copies are made) and every prefix sum of U must dominate the corresponding
/// prefix sum of V. \pre equal lengths.
bool majorizes(std::vector<std::uint64_t> u, std::vector<std::uint64_t> v);
bool majorizes(std::vector<double> u, std::vector<double> v);

}  // namespace nubb
