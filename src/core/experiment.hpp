#pragma once

/// \file experiment.hpp
/// Monte-Carlo experiment driver: replicate a game many times with
/// deterministic per-replication seeds, aggregate with mergeable collectors,
/// optionally in parallel.
///
/// The high-level runners below cover every measurement shape the paper's
/// evaluation uses:
///   * scalar statistics of the final maximum load        (Figs 6, 8, 14, 15, 17, 18)
///   * mean sorted load profile                           (Figs 1-5, 10, 11)
///   * mean per-capacity-class sorted profiles            (Figs 12, 13)
///   * which capacity class attains the maximum           (Figs 7, 9)
///   * trace of (max - average) at checkpoints            (Fig 16)

#include <cstdint>
#include <map>
#include <vector>

#include "core/game.hpp"
#include "core/metrics.hpp"
#include "core/probability.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace nubb {

/// Replication parameters shared by all runners.
struct ExperimentConfig {
  std::uint64_t replications = 1000;
  std::uint64_t base_seed = 0xB1A5ED0ULL;
  ThreadPool* pool = nullptr;  ///< null => global pool

  /// Replication chunk count. 0 keeps the fixed default layout
  /// (kReplicationChunks = 16) that every golden value pins. Machines with
  /// more than 16 workers idle under the default; overriding (e.g. to 4x
  /// the worker count) keeps them busy. Results stay deterministic and
  /// thread-count-invariant for any fixed value, but differ between chunk
  /// counts (the floating-point merge grouping changes), so overrides are
  /// opt-in per experiment.
  std::uint64_t chunks = 0;
};

// ---------------------------------------------------------------------------
// Mergeable collectors (commutative monoids for parallel_replications).
// ---------------------------------------------------------------------------

/// Scalar statistic collector.
struct ScalarCollector {
  RunningStats stats;
  void add(double x) { stats.add(x); }
  void merge(const ScalarCollector& other) { stats.merge(other.stats); }
};

/// Mean of equal-length vectors (sorted profiles, checkpoint traces).
class VectorMeanCollector {
 public:
  void add(const std::vector<double>& v);
  void merge(const VectorMeanCollector& other);
  std::vector<double> mean() const;
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::vector<double> sum_;
  std::uint64_t count_ = 0;
};

/// Frequency with which each key "wins" across replications.
class KeyFrequencyCollector {
 public:
  /// Record that `key` occurred in this replication.
  void add(std::uint64_t key);
  void add_trial() { ++trials_; }
  void merge(const KeyFrequencyCollector& other);
  /// Fraction of replications in which `key` occurred.
  double fraction(std::uint64_t key) const;
  std::uint64_t trials() const noexcept { return trials_; }
  std::map<std::uint64_t, std::uint64_t> counts() const { return counts_; }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t trials_ = 0;
};

// ---------------------------------------------------------------------------
// High-level runners.
// ---------------------------------------------------------------------------

/// Statistics of the final maximum load over replications.
Summary max_load_summary(const std::vector<std::uint64_t>& capacities,
                         const SelectionPolicy& policy, const GameConfig& game,
                         const ExperimentConfig& exp);

/// Mean sorted (descending) load profile over replications.
std::vector<double> mean_sorted_profile(const std::vector<std::uint64_t>& capacities,
                                        const SelectionPolicy& policy, const GameConfig& game,
                                        const ExperimentConfig& exp);

/// Mean sorted profile per capacity class (key = capacity value).
std::map<std::uint64_t, std::vector<double>> mean_class_profiles(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);

/// For each capacity class, the fraction of replications in which a bin of
/// that class attains the exact maximum load (ties count for every class
/// attaining the maximum, as in Figures 7 and 9).
std::map<std::uint64_t, double> class_of_max_fractions(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);

/// Throw `total_balls` balls, recording (max load - average load) after every
/// `checkpoint_interval` balls; returns the mean trace over replications.
/// The trace length is ceil(total_balls / checkpoint_interval).
std::vector<double> mean_gap_trace(const std::vector<std::uint64_t>& capacities,
                                   const SelectionPolicy& policy, const GameConfig& game,
                                   std::uint64_t total_balls, std::uint64_t checkpoint_interval,
                                   const ExperimentConfig& exp);

/// Statistics of the final max load *and* the full distribution of the
/// max-load value (as RunningStats plus min/max); convenience for benches
/// that want error bars.
struct MaxLoadDistribution {
  Summary summary;
  double q50 = 0.0;
  double q95 = 0.0;
  double q99 = 0.0;
};
MaxLoadDistribution max_load_distribution(const std::vector<std::uint64_t>& capacities,
                                          const SelectionPolicy& policy, const GameConfig& game,
                                          const ExperimentConfig& exp);

}  // namespace nubb
