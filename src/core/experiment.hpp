#pragma once

/// \file experiment.hpp
/// Monte-Carlo replication engine: replicate a game many times with
/// deterministic per-replication seeds, aggregate with mergeable collectors,
/// optionally in parallel — within one process or sharded across many.
///
/// The layer has three pieces:
///
///   * **Collectors** — commutative monoids (`merge`) with bit-exact JSON
///     round trips, so partial results can travel between processes without
///     perturbing merged values. `KeyedCollector` and `MultiCollector`
///     compose any collector per key / into tuples, so one replication pass
///     can feed several measurements at once.
///   * **The engine** — `replicate_shard` runs one per-replication `body`
///     over this shard's slice of the replication chunk layout and packages
///     the per-chunk collector states; `merge_shards` folds a complete
///     shard set in global chunk order, replaying the exact floating-point
///     merge sequence of a single-process run. `replicate` is literally
///     shard 0-of-1 plus the merge, so the sharded path cannot drift from
///     the golden values: a merged N-shard run is bit-identical to the
///     single-process run.
///   * **Runners** — the measurement shapes the paper's evaluation uses,
///     each a thin descriptor over the engine (see experiment.cpp): a
///     per-replication body plus a finalizer, from which the plain /
///     `*_shard` / `*_merge` triple is generated.
///
/// Runner coverage:
///   * scalar statistics of the final maximum load        (Figs 6, 8, 14, 15, 17, 18)
///   * mean sorted load profile                           (Figs 1-5, 10, 11)
///   * mean per-capacity-class sorted profiles            (Figs 12, 13)
///   * which capacity class attains the maximum           (Figs 7, 9)
///   * trace of (max - average) at checkpoints            (Fig 16)
///
/// Higher-level, string-keyed experiment dispatch (the `nubb_run
/// --experiment` registry) lives in core/scenario.hpp on top of this
/// engine.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/game.hpp"
#include "core/metrics.hpp"
#include "core/probability.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace nubb {

/// Replication parameters shared by all runners.
struct ExperimentConfig {
  std::uint64_t replications = 1000;
  std::uint64_t base_seed = 0xB1A5ED0ULL;
  ThreadPool* pool = nullptr;  ///< null => global pool

  /// Replication chunk count. 0 keeps the fixed default layout
  /// (kReplicationChunks = 16) that every golden value pins. Machines with
  /// more than 16 workers idle under the default; overriding (e.g. to 4x
  /// the worker count) keeps them busy. Results stay deterministic and
  /// thread-count-invariant for any fixed value, but differ between chunk
  /// counts (the floating-point merge grouping changes), so overrides are
  /// opt-in per experiment.
  std::uint64_t chunks = 0;

  /// Shard coordinates for multi-process runs: the `*_shard` runners
  /// execute only the replication chunks that shard `shard_index` of
  /// `shard_count` owns (a contiguous slice of the chunk layout above,
  /// which itself never depends on the shard split). The default 0-of-1
  /// owns everything. The plain runners require the default: a sharded
  /// config silently producing a partial "full" result would be a trap.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
};

// ---------------------------------------------------------------------------
// Mergeable collectors (commutative monoids for the replication engine).
//
// Every collector serializes its raw accumulator state with to_json and
// restores it with from_json; the round trip is bit-exact, so collector
// states can travel between processes without perturbing merged results.
// ---------------------------------------------------------------------------

/// Scalar statistic collector.
struct ScalarCollector {
  RunningStats stats;
  void add(double x) { stats.add(x); }
  void merge(const ScalarCollector& other) { stats.merge(other.stats); }
  void to_json(JsonWriter& w) const { stats.to_json(w); }
  static ScalarCollector from_json(const JsonValue& v) {
    return ScalarCollector{RunningStats::from_json(v)};
  }
};

/// Mean of equal-length vectors (sorted profiles, checkpoint traces).
class VectorMeanCollector {
 public:
  void add(const std::vector<double>& v);
  void merge(const VectorMeanCollector& other);
  std::vector<double> mean() const;
  std::uint64_t count() const noexcept { return count_; }

  void to_json(JsonWriter& w) const;
  static VectorMeanCollector from_json(const JsonValue& v);

 private:
  std::vector<double> sum_;
  std::uint64_t count_ = 0;
};

/// Frequency with which each key "wins" across replications.
class KeyFrequencyCollector {
 public:
  /// Record that `key` occurred in this replication.
  void add(std::uint64_t key);
  void add_trial() { ++trials_; }
  void merge(const KeyFrequencyCollector& other);
  /// Fraction of replications in which `key` occurred.
  double fraction(std::uint64_t key) const;
  std::uint64_t trials() const noexcept { return trials_; }
  const std::map<std::uint64_t, std::uint64_t>& counts() const noexcept { return counts_; }

  void to_json(JsonWriter& w) const;
  static KeyFrequencyCollector from_json(const JsonValue& v);

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t trials_ = 0;
};

/// One `Collector` per uint64 key, merged keywise. Keys appear on first
/// `add`-style touch of `per_key[k]`; merging unions the key sets.
template <typename Collector>
struct KeyedCollector {
  std::map<std::uint64_t, Collector> per_key;

  void merge(const KeyedCollector& other) {
    for (const auto& [key, collector] : other.per_key) per_key[key].merge(collector);
  }

  void to_json(JsonWriter& w) const {
    w.begin_object();
    w.key("entries");
    w.begin_array();
    for (const auto& [key, collector] : per_key) {
      w.begin_object();
      w.kv("key", key);
      w.key("state");
      collector.to_json(w);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  static KeyedCollector from_json(const JsonValue& v) {
    KeyedCollector out;
    for (const JsonValue& entry : v.at("entries").as_array()) {
      const std::uint64_t key = entry.at("key").as_uint64();
      if (out.per_key.count(key)) {
        throw JsonError("KeyedCollector: duplicate key " + std::to_string(key));
      }
      out.per_key[key] = Collector::from_json(entry.at("state"));
    }
    return out;
  }
};

/// One VectorMeanCollector per capacity class (mean_class_profiles).
using ClassProfilesCollector = KeyedCollector<VectorMeanCollector>;

/// Running statistics plus the raw sample, for quantile-style
/// post-processing (max_load_distribution).
struct SampleCollector {
  RunningStats stats;
  std::vector<double> values;
  void add(double x) {
    stats.add(x);
    values.push_back(x);
  }
  void merge(const SampleCollector& other);
  void to_json(JsonWriter& w) const;
  static SampleCollector from_json(const JsonValue& v);
};

/// Tuple of collectors fed by one replication pass: a single engine run can
/// measure several quantities at once instead of replaying the games once
/// per collector. Serializes as a JSON array in part order.
template <typename... Parts>
struct MultiCollector {
  std::tuple<Parts...> parts;

  template <std::size_t I>
  auto& part() noexcept {
    return std::get<I>(parts);
  }
  template <std::size_t I>
  const auto& part() const noexcept {
    return std::get<I>(parts);
  }

  void merge(const MultiCollector& other) {
    merge_impl(other, std::index_sequence_for<Parts...>{});
  }

  void to_json(JsonWriter& w) const {
    w.begin_array();
    std::apply([&w](const Parts&... ps) { (ps.to_json(w), ...); }, parts);
    w.end_array();
  }

  static MultiCollector from_json(const JsonValue& v) {
    const std::vector<JsonValue>& items = v.as_array();
    if (items.size() != sizeof...(Parts)) {
      throw JsonError("MultiCollector: expected " + std::to_string(sizeof...(Parts)) +
                      " parts, got " + std::to_string(items.size()));
    }
    MultiCollector out;
    from_json_impl(out, items, std::index_sequence_for<Parts...>{});
    return out;
  }

 private:
  template <std::size_t... Is>
  void merge_impl(const MultiCollector& other, std::index_sequence<Is...>) {
    (std::get<Is>(parts).merge(std::get<Is>(other.parts)), ...);
  }

  template <std::size_t... Is>
  static void from_json_impl(MultiCollector& out, const std::vector<JsonValue>& items,
                             std::index_sequence<Is...>) {
    ((std::get<Is>(out.parts) =
          std::tuple_element_t<Is, std::tuple<Parts...>>::from_json(items[Is])),
     ...);
  }
};

// ---------------------------------------------------------------------------
// Shard state: partial results that merge bit-exactly.
// ---------------------------------------------------------------------------

/// Partial result of one shard of a replicated experiment: the collector
/// state of every replication chunk the shard owns, keyed by global chunk
/// index. Chunks are kept separate rather than pre-merged — that is what
/// makes the merge exact: `merge_shards` folds all chunks in global chunk
/// order, replaying the precise floating-point merge sequence of the
/// single-process run.
template <typename Collector>
struct ExperimentShard {
  std::uint64_t replications = 0;
  std::uint64_t base_seed = 0;
  std::uint64_t chunk_count = 0;  ///< resolved layout (non-empty chunks)
  std::vector<std::pair<std::uint64_t, Collector>> chunks;

  void to_json(JsonWriter& w) const {
    w.begin_object();
    w.kv("replications", replications);
    w.kv("base_seed", base_seed);
    w.kv("chunk_count", chunk_count);
    w.key("chunks");
    w.begin_array();
    for (const auto& [index, state] : chunks) {
      w.begin_object();
      w.kv("index", index);
      w.key("state");
      state.to_json(w);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  static ExperimentShard from_json(const JsonValue& v) {
    ExperimentShard shard;
    shard.replications = v.at("replications").as_uint64();
    shard.base_seed = v.at("base_seed").as_uint64();
    shard.chunk_count = v.at("chunk_count").as_uint64();
    for (const JsonValue& entry : v.at("chunks").as_array()) {
      shard.chunks.emplace_back(entry.at("index").as_uint64(),
                                Collector::from_json(entry.at("state")));
    }
    return shard;
  }
};

/// Fold shard partials in global chunk order into one collector,
/// bit-identical to the single-process fold. Validates that the shards
/// describe the same experiment (replications / seed / chunk layout) and
/// together cover every chunk exactly once; throws std::runtime_error
/// otherwise (shard files are external input, not caller code).
template <typename Collector>
Collector merge_shards(const std::vector<ExperimentShard<Collector>>& shards) {
  if (shards.empty()) throw std::runtime_error("merge_shards: no shards given");
  const ExperimentShard<Collector>& head = shards.front();
  // chunk_count counts non-empty chunks, so a complete shard set carries
  // exactly chunk_count chunk entries; bounding by what was actually
  // parsed keeps a corrupt state file a clean error instead of a huge
  // allocation sized from an untrusted field.
  std::size_t total_entries = 0;
  for (const auto& shard : shards) total_entries += shard.chunks.size();
  if (head.chunk_count > total_entries) {
    throw std::runtime_error(
        "merge_shards: shard set carries fewer chunks than the layout requires "
        "(incomplete or corrupt state)");
  }
  std::vector<const Collector*> by_chunk(head.chunk_count, nullptr);
  for (const auto& shard : shards) {
    if (shard.replications != head.replications || shard.base_seed != head.base_seed ||
        shard.chunk_count != head.chunk_count) {
      throw std::runtime_error("merge_shards: shards describe different experiments");
    }
    for (const auto& [index, state] : shard.chunks) {
      if (index >= head.chunk_count) {
        throw std::runtime_error("merge_shards: chunk index out of range");
      }
      if (by_chunk[index]) {
        throw std::runtime_error("merge_shards: chunk " + std::to_string(index) +
                                 " appears in more than one shard");
      }
      by_chunk[index] = &state;
    }
  }
  Collector out;
  for (std::uint64_t c = 0; c < head.chunk_count; ++c) {
    if (!by_chunk[c]) {
      throw std::runtime_error("merge_shards: chunk " + std::to_string(c) +
                               " is missing (incomplete shard set)");
    }
    out.merge(*by_chunk[c]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// The replication engine.
// ---------------------------------------------------------------------------

/// Shared per-experiment fixture: the sampler is immutable and thread-safe,
/// so it is built once and shared across replications. `run_one` plays one
/// complete game on a cleared bin array, dispatching to the batched
/// (stale-information) process when `GameConfig::batch > 1`.
class GameFixture {
 public:
  GameFixture(const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
              const GameConfig& game)
      : sampler_(BinSampler::from_policy(policy, capacities)), game_(game) {}

  GameResult run_one(Xoshiro256StarStar& rng, BinArray& bins) const;

  const BinSampler& sampler() const noexcept { return sampler_; }
  const GameConfig& game() const noexcept { return game_; }

 private:
  BinSampler sampler_;
  GameConfig game_;
};

/// Per-worker scratch state: one BinArray (cleared, not reallocated, between
/// replications) plus a staging buffer for profiles and traces. Built once
/// per chunk by the engine — on the worker thread that will run the chunk,
/// so the slot pages are first-touched NUMA-local to their worker (see
/// replication_chunk_states) — and never migrates between chunks.
struct ReplicationScratch {
  BinArray bins;
  std::vector<double> scratch;

  explicit ReplicationScratch(const std::vector<std::uint64_t>& capacities,
                              const MemoryConfig& mem = {})
      : bins(capacities, mem) {}
};

/// The plain (full-result) entry points refuse sharded configs: a shard
/// config flowing into a full runner would silently yield a partial result.
inline void require_unsharded(const ExperimentConfig& exp) {
  NUBB_REQUIRE_MSG(exp.shard_index == 0 && exp.shard_count == 1,
                   "sharded ExperimentConfig passed to a full runner; use the *_shard / "
                   "*_merge API");
}

/// One engine pass: execute this shard's slice of the replication chunk
/// layout and package the per-chunk collector states.
/// `body(rep, rng, scratch, collector)` performs one replication; shard
/// 0-of-1 runs everything. Every runner and scenario is a `body` plus a
/// finalizer over the merged collector — nothing else re-implements
/// collection or merging.
template <typename Collector, typename Body>
ExperimentShard<Collector> replicate_shard(const std::vector<std::uint64_t>& capacities,
                                           const ExperimentConfig& exp, Body body,
                                           const MemoryConfig& mem = {}) {
  NUBB_REQUIRE_MSG(exp.shard_count >= 1, "ExperimentConfig::shard_count must be >= 1");
  NUBB_REQUIRE_MSG(exp.shard_index < exp.shard_count,
                   "ExperimentConfig::shard_index out of range");
  const ChunkLayout layout = make_chunk_layout(exp.replications, exp.chunks);
  const auto [first, last] =
      shard_chunk_range(layout.chunk_count, exp.shard_index, exp.shard_count);

  ExperimentShard<Collector> shard;
  shard.replications = exp.replications;
  shard.base_seed = exp.base_seed;
  shard.chunk_count = layout.chunk_count;
  shard.chunks = replication_chunk_states<Collector>(
      layout, exp.base_seed,
      [&capacities, &mem] { return ReplicationScratch(capacities, mem); }, body, first, last,
      exp.pool);
  return shard;
}

/// Full-result engine pass: shard 0-of-1 plus the merge, the single code
/// path that keeps sharded and plain runs bit-identical by construction.
template <typename Collector, typename Body>
Collector replicate(const std::vector<std::uint64_t>& capacities, const ExperimentConfig& exp,
                    Body body, const MemoryConfig& mem = {}) {
  require_unsharded(exp);
  return merge_shards<Collector>({replicate_shard<Collector>(capacities, exp, body, mem)});
}

// ---------------------------------------------------------------------------
// High-level runners. Each plain runner requires an unsharded config
// (shard 0 of 1) and equals `*_merge({*_shard(...)})`; the `*_shard` form
// runs only this shard's chunks (honouring ExperimentConfig::shard_index /
// shard_count) and the `*_merge` form finalizes any complete shard set.
// All honour GameConfig::batch except mean_gap_trace (checkpoints require
// the sequential process).
// ---------------------------------------------------------------------------

/// Statistics of the final maximum load over replications.
Summary max_load_summary(const std::vector<std::uint64_t>& capacities,
                         const SelectionPolicy& policy, const GameConfig& game,
                         const ExperimentConfig& exp);
ExperimentShard<ScalarCollector> max_load_summary_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
Summary max_load_summary_merge(const std::vector<ExperimentShard<ScalarCollector>>& shards);

/// Mean sorted (descending) load profile over replications.
std::vector<double> mean_sorted_profile(const std::vector<std::uint64_t>& capacities,
                                        const SelectionPolicy& policy, const GameConfig& game,
                                        const ExperimentConfig& exp);
ExperimentShard<VectorMeanCollector> mean_sorted_profile_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
std::vector<double> mean_sorted_profile_merge(
    const std::vector<ExperimentShard<VectorMeanCollector>>& shards);

/// Mean sorted profile per capacity class (key = capacity value).
std::map<std::uint64_t, std::vector<double>> mean_class_profiles(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
ExperimentShard<ClassProfilesCollector> mean_class_profiles_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
std::map<std::uint64_t, std::vector<double>> mean_class_profiles_merge(
    const std::vector<ExperimentShard<ClassProfilesCollector>>& shards);

/// For each capacity class, the fraction of replications in which a bin of
/// that class attains the exact maximum load (ties count for every class
/// attaining the maximum, as in Figures 7 and 9).
std::map<std::uint64_t, double> class_of_max_fractions(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
ExperimentShard<KeyFrequencyCollector> class_of_max_fractions_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
std::map<std::uint64_t, double> class_of_max_fractions_merge(
    const std::vector<ExperimentShard<KeyFrequencyCollector>>& shards);

/// Throw `total_balls` balls, recording (max load - average load) after every
/// `checkpoint_interval` balls; returns the mean trace over replications.
/// The trace length is ceil(total_balls / checkpoint_interval).
/// \pre GameConfig::batch <= 1 (the batched process has no checkpoints).
std::vector<double> mean_gap_trace(const std::vector<std::uint64_t>& capacities,
                                   const SelectionPolicy& policy, const GameConfig& game,
                                   std::uint64_t total_balls, std::uint64_t checkpoint_interval,
                                   const ExperimentConfig& exp);
ExperimentShard<VectorMeanCollector> mean_gap_trace_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, std::uint64_t total_balls, std::uint64_t checkpoint_interval,
    const ExperimentConfig& exp);
std::vector<double> mean_gap_trace_merge(
    const std::vector<ExperimentShard<VectorMeanCollector>>& shards);

/// Statistics of the final max load *and* the full distribution of the
/// max-load value (as RunningStats plus min/max); convenience for benches
/// that want error bars.
struct MaxLoadDistribution {
  Summary summary;
  double q50 = 0.0;
  double q95 = 0.0;
  double q99 = 0.0;
};
MaxLoadDistribution max_load_distribution(const std::vector<std::uint64_t>& capacities,
                                          const SelectionPolicy& policy, const GameConfig& game,
                                          const ExperimentConfig& exp);
ExperimentShard<SampleCollector> max_load_distribution_shard(
    const std::vector<std::uint64_t>& capacities, const SelectionPolicy& policy,
    const GameConfig& game, const ExperimentConfig& exp);
MaxLoadDistribution max_load_distribution_merge(
    const std::vector<ExperimentShard<SampleCollector>>& shards);

}  // namespace nubb
