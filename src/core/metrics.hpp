#pragma once

/// \file metrics.hpp
/// Post-game measurements used by the figure harnesses:
/// sorted load profiles, per-capacity-class profiles, the identity of the
/// maximally loaded bin(s), and the max-vs-average gap.

#include <cstdint>
#include <vector>

#include "core/bin_array.hpp"
#include "core/load.hpp"

namespace nubb {

/// All bin loads, sorted descending (what Figures 1-5 and 10-11 plot).
std::vector<double> sorted_load_profile(const BinArray& bins);

/// Allocation-free variant for hot replication loops: `out` is resized and
/// overwritten, so a worker can reuse one buffer across replications.
void sorted_load_profile(const BinArray& bins, std::vector<double>& out);

/// Loads of the bins with the given capacity, sorted descending
/// (Figures 12/13 split the profile by capacity class).
std::vector<double> sorted_class_profile(const BinArray& bins, std::uint64_t capacity);

/// Buffer-reusing variant; `out` is cleared and refilled.
void sorted_class_profile(const BinArray& bins, std::uint64_t capacity,
                          std::vector<double>& out);

/// Exact maximum load by full scan (cross-checks BinArray's online maximum).
Load scan_max_load(const BinArray& bins);

/// Distinct capacities of bins attaining the exact maximum load (exact
/// rational tie detection; Figures 7/9 ask which class holds the maximum).
std::vector<std::uint64_t> capacities_attaining_max(const BinArray& bins);

/// max load - average load (the quantity of Figure 16).
double load_gap(const BinArray& bins);

/// Number of distinct capacity values present.
std::vector<std::uint64_t> distinct_capacities(const BinArray& bins);

}  // namespace nubb
