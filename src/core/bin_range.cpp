#include "core/bin_range.hpp"

#include "util/assert.hpp"
#include "util/int128.hpp"

namespace nubb {

std::vector<BinRange> partition_bins(const std::vector<std::uint64_t>& capacities,
                                     std::size_t shards) {
  const std::size_t n = capacities.size();
  NUBB_REQUIRE_MSG(n > 0, "cannot partition an empty bin set");
  NUBB_REQUIRE_MSG(shards >= 1, "need at least one shard");
  if (shards > n) shards = n;  // every shard must own at least one bin

  std::uint64_t total = 0;
  for (const std::uint64_t c : capacities) {
    NUBB_REQUIRE_MSG(c >= 1, "bin capacities must be positive");
    total += c;
  }

  std::vector<BinRange> ranges;
  ranges.reserve(shards);
  std::size_t next = 0;
  std::uint64_t prefix = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t first = next;
    const std::size_t tail = shards - s - 1;  // shards after this one
    if (tail == 0) {
      next = n;
    } else {
      // Every shard owns at least one bin; the loop invariant
      // n - next >= tail + 1 (each earlier shard took >= 1 bin and shards
      // was clamped to n) makes the forced take safe.
      prefix += capacities[next];
      ++next;
      // Extend while the capacity prefix stays below this shard's share of
      // the total — cut where (s+1)/S of the capacity falls, taking the
      // boundary bin only when that lands closer to the target. The u128
      // product keeps the target exact for totals near 2^64.
      const std::uint64_t target =
          static_cast<std::uint64_t>(static_cast<uint128>(s + 1) * total / shards);
      while (next < n - tail && prefix < target) {
        const std::uint64_t cap = capacities[next];
        if (prefix + cap <= target) {
          prefix += cap;
          ++next;
          continue;
        }
        // Taking this bin overshoots; take it anyway iff the overshoot is
        // smaller than the gap stopping short would leave.
        if (prefix + cap - target < target - prefix) {
          prefix += cap;
          ++next;
        }
        break;
      }
    }
    ranges.push_back(BinRange{first, next - first});
  }
  NUBB_REQUIRE(next == n);
  return ranges;
}

}  // namespace nubb
