#include "core/builder.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace nubb {

std::vector<std::uint64_t> uniform_capacities(std::size_t n, std::uint64_t c) {
  NUBB_REQUIRE_MSG(n >= 1, "need at least one bin");
  NUBB_REQUIRE_MSG(c >= 1, "capacity must be positive");
  return std::vector<std::uint64_t>(n, c);
}

std::vector<std::uint64_t> two_class_capacities(std::size_t n_small, std::uint64_t c_small,
                                                std::size_t n_large, std::uint64_t c_large) {
  NUBB_REQUIRE_MSG(n_small + n_large >= 1, "need at least one bin");
  NUBB_REQUIRE_MSG(c_small >= 1 && c_large >= 1, "capacities must be positive");
  std::vector<std::uint64_t> caps;
  caps.reserve(n_small + n_large);
  caps.insert(caps.end(), n_small, c_small);
  caps.insert(caps.end(), n_large, c_large);
  return caps;
}

std::vector<std::uint64_t> binomial_capacities(std::size_t n, double mean_capacity,
                                               Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(n >= 1, "need at least one bin");
  NUBB_REQUIRE_MSG(mean_capacity >= 1.0 && mean_capacity <= 8.0,
                   "Section 4.2 model requires mean capacity in [1, 8]");
  const BinomialDistribution binom(7, (mean_capacity - 1.0) / 7.0);
  std::vector<std::uint64_t> caps(n);
  for (auto& c : caps) c = 1 + binom(rng);
  return caps;
}

std::vector<std::uint64_t> zipf_capacities(std::size_t n, double alpha,
                                           std::uint64_t max_capacity,
                                           Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(n >= 1, "need at least one bin");
  NUBB_REQUIRE_MSG(alpha >= 0.0, "zipf exponent must be non-negative");
  NUBB_REQUIRE_MSG(max_capacity >= 1, "max capacity must be positive");

  std::vector<double> weights(max_capacity);
  for (std::uint64_t k = 1; k <= max_capacity; ++k) {
    weights[k - 1] = std::pow(static_cast<double>(k), -alpha);
  }
  const DiscreteCdfDistribution dist(weights);
  std::vector<std::uint64_t> caps(n);
  for (auto& c : caps) c = 1 + dist(rng);
  return caps;
}

std::vector<std::uint64_t> from_classes(const std::vector<CapacityClass>& classes) {
  std::vector<std::uint64_t> caps;
  for (const auto& cls : classes) {
    NUBB_REQUIRE_MSG(cls.capacity >= 1, "capacities must be positive");
    caps.insert(caps.end(), cls.count, cls.capacity);
  }
  NUBB_REQUIRE_MSG(!caps.empty(), "need at least one bin");
  return caps;
}

}  // namespace nubb
