#pragma once

/// \file placement_resolve.hpp
/// The stream-v2 resolve-stage building blocks, shared between the scalar
/// placement kernel TU and the AVX2 TU (placement_kernel_avx2.cpp). Hoisted
/// verbatim from placement_kernel.cpp's anonymous namespace: the SIMD loops
/// vectorise the per-element math but fall back to these exact scalar bodies
/// for duplicate candidates, destination collisions within a group, and
/// chunk tails, which is what keeps the two paths bit-identical. Everything
/// here is header-only and NUBB_ALWAYS_INLINE so each TU compiles it at its
/// own ISA level.

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/placement_kernel.hpp"
#include "core/weighted.hpp"
#include "util/inline.hpp"
#include "util/int128.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace nubb::detail {

/// Branchless `c ? a : b` on unsigned integers. The ternary spelling is NOT
/// equivalent in practice: gcc if-converts it only sometimes (it kept the
/// kFirstChoice fold branchless but compiled the kPreferLargerCapacity pick
/// as a jump around the selects), and a ~50/50 data-dependent jump in the
/// resolve loop costs ~15 cycles per ball in mispredicts. The xor-mask form
/// cannot be turned back into a branch.
template <class T>
NUBB_ALWAYS_INLINE inline T csel(bool c, T a, T b) {
  static_assert(std::is_unsigned_v<T>);
  const T mask = static_cast<T>(0) - static_cast<T>(c);
  return static_cast<T>(b ^ ((b ^ a) & mask));
}

/// One stream-v2 candidate draw under an alias table: a single 64-bit word
/// serves as both the slot draw and the acceptance mantissa. The word is
/// drawn through the same 128-bit product and low-half rejection as
/// Xoshiro256StarStar::bounded (`reject` is the hoisted `2^64 mod n`), so
/// the slot is exactly uniform; the acceptance mantissa is bits 11..63 of
/// the accepted low half, whose residual non-uniformity (a grid of spacing
/// n over [reject, 2^64)) is below the 2^-53 threshold quantisation shared
/// with stream v1. Part of the docs/stream-v2.md contract.
NUBB_ALWAYS_INLINE inline std::size_t draw_candidate_v2(const std::uint64_t* const threshold,
                                                        const std::uint32_t* const alias,
                                                        const std::uint64_t n,
                                                        const std::uint64_t reject,
                                                        Xoshiro256StarStar& rng) {
  std::uint64_t lo;
  std::uint64_t hi;
  for (;;) {
    const uint128 m = static_cast<uint128>(rng.next()) * n;
    lo = static_cast<std::uint64_t>(m);
    hi = static_cast<std::uint64_t>(m >> 64);
    if (lo >= reject) [[likely]] break;
  }
  const auto slot = static_cast<std::uint32_t>(hi);
  const std::uint32_t al = alias[slot];
  // Unconditional alias load + forced conditional move: the accept test on
  // real profiles is a coin flip (mixed 1:10 rejects ~40% of slots), which
  // as a branch costs more in mispredicts than the extra L1 load — and the
  // ternary spelling did compile to a jump around an out-of-line alias path.
  return static_cast<std::size_t>(csel((lo >> 11) < threshold[slot], slot, al));
}

/// Mutable bookkeeping a fused loop keeps in registers for its whole run and
/// flushes back to the bin array once at the end: the total committed
/// amount and the running maximum load (add_ball/add_weight semantics).
/// Passed and returned by value so every loop body below optimises as a
/// small self-contained function.
struct RunTotals {
  std::uint64_t total;
  std::uint64_t max_num;
  std::uint64_t max_cap;
  std::size_t argmax;
};

/// Exact post-allocation load comparison of num_a/cap_a vs num_b/cap_b by
/// cross multiplication at the width the kernel selected at construction.
template <bool Fast64>
NUBB_ALWAYS_INLINE inline void load_less_equal(std::uint64_t num_a, std::uint64_t cap_a,
                                               std::uint64_t num_b, std::uint64_t cap_b,
                                               bool& less, bool& equal) {
  if constexpr (Fast64) {
    const std::uint64_t lhs = num_a * cap_b;
    const std::uint64_t rhs = num_b * cap_a;
    less = lhs < rhs;
    equal = lhs == rhs;
  } else {
    const uint128 lhs = static_cast<uint128>(num_a) * cap_b;
    const uint128 rhs = static_cast<uint128>(num_b) * cap_a;
    less = lhs < rhs;
    equal = lhs == rhs;
  }
}

/// Fused composite-key comparison for kPreferLargerCapacity: `beats` is
/// "key_a strictly precedes key_b" under (load ascending, capacity
/// descending), `tied` is full key equality. Exact on integers:
/// lhs < rhs gives beats regardless of the bump; lhs == rhs promotes to
/// beats exactly when cap_a > cap_b; lhs > rhs implies lhs >= rhs + 1 so
/// the bump cannot flip it. The +1 cannot wrap — the Fast64 gate caps
/// every cross product at 2^64 - 2, and 128-bit products are below
/// 2^128 - 1 by construction. Three operations cheaper per pair than
/// assembling the same bits from load_less_equal plus capacity tests,
/// which is what the Greedy[3] resolve budget needed.
template <bool Fast64>
NUBB_ALWAYS_INLINE inline void key_beats_tied(std::uint64_t num_a, std::uint64_t cap_a,
                                              std::uint64_t num_b, std::uint64_t cap_b,
                                              bool& beats, bool& tied) {
  if constexpr (Fast64) {
    const std::uint64_t lhs = num_a * cap_b;
    const std::uint64_t rhs = num_b * cap_a;
    beats = lhs < rhs + static_cast<std::uint64_t>(cap_a > cap_b);
    tied = (lhs == rhs) & (cap_a == cap_b);
  } else {
    const uint128 lhs = static_cast<uint128>(num_a) * cap_b;
    const uint128 rhs = static_cast<uint128>(num_b) * cap_a;
    beats = lhs < rhs + static_cast<uint128>(cap_a > cap_b);
    tied = (lhs == rhs) & (cap_a == cap_b);
  }
}

/// Commit `amount` into `dest` whose post-allocation numerator and capacity
/// the decide stage already holds in registers; update the running maximum.
template <bool Fast64>
NUBB_ALWAYS_INLINE inline void commit_known(BinSlot* slots, std::size_t dest,
                                            std::uint64_t num, std::uint64_t cap,
                                            std::uint64_t amount, RunTotals& t) {
  slots[dest].num = num;
  t.total += amount;
  bool greater;
  if constexpr (Fast64) {
    greater = num * t.max_cap > t.max_num * cap;
  } else {
    greater = Load{t.max_num, t.max_cap} < Load{num, cap};
  }
  // Deliberately a branch, not a conditional move: the maximum changes a
  // vanishing fraction of balls once the run warms up, and an if-converted
  // update (gcc spills argmax) threads a store-to-load-forwarding chain
  // through every iteration of the resolve loops. [[unlikely]] alone does
  // not stop gcc's if-conversion here; the barrier does.
  if (greater) [[unlikely]] {
    NUBB_FORCE_BRANCH();
    t.max_num = num;
    t.max_cap = cap;
    t.argmax = dest;
  }
}

/// Commit into a destination whose slot has not been read yet.
template <bool Fast64>
NUBB_ALWAYS_INLINE inline void commit_amount(BinSlot* slots, std::size_t dest,
                                             std::uint64_t amount, RunTotals& t) {
  const BinSlot s = slots[dest];
  commit_known<Fast64>(slots, dest, s.num + amount, s.cap, amount, t);
}

/// Branchless decide-and-commit for one stream-v2 Greedy[2] ball: both
/// candidates and the ball's tie bit are pre-drawn, so apart from the rare
/// duplicate pair and the rarely-taken running-max update every decision is
/// a conditional move (the ~50/50 winner-pick branch alone cost the first
/// v2 cut a third of its per-ball budget in mispredicts). Returns the
/// destination so the AVX2 group loop can track intra-group collisions.
template <bool Fast64, TieBreak TB>
NUBB_ALWAYS_INLINE inline std::size_t resolve_ball_d2_w(BinSlot* const slots,
                                                        const std::size_t c0,
                                                        const std::size_t c1,
                                                        const std::uint64_t w,
                                                        const bool tie_bit, RunTotals& t) {
  if (c0 == c1) [[unlikely]] {
    commit_amount<Fast64>(slots, c0, w, t);  // a duplicate pair is the set {c0}
    return c0;
  }
  const BinSlot s0 = slots[c0];
  const BinSlot s1 = slots[c1];
  const std::uint64_t n0 = s0.num + w;
  const std::uint64_t n1 = s1.num + w;
  bool c1_less;
  bool equal;
  load_less_equal<Fast64>(n1, s1.cap, n0, s0.cap, c1_less, equal);
  bool pick1;
  if constexpr (TB == TieBreak::kFirstChoice) {
    pick1 = c1_less;
  } else if constexpr (TB == TieBreak::kUniform) {
    pick1 = c1_less | (equal & tie_bit);
  } else {
    // Prefer the larger capacity; the tie bit decides only between equals.
    const bool cap_gt = s1.cap > s0.cap;
    const bool cap_eq = s1.cap == s0.cap;
    pick1 = c1_less | (equal & (cap_gt | (cap_eq & tie_bit)));
  }
  const std::size_t dest = csel(pick1, c1, c0);
  const std::uint64_t num = csel(pick1, n1, n0);
  const std::uint64_t cap = csel(pick1, s1.cap, s0.cap);
  commit_known<Fast64>(slots, dest, num, cap, w, t);
  return dest;
}

/// Branchless decide-and-commit for one stream-v2 Greedy[3] ball with
/// distinct candidates (duplicates — probability <= 3/n per ball — fall
/// back to the generic pretied fold, which shares the tie contract). The
/// tie pick is `field mod bc` over the co-minimal members in recorded
/// order, exactly like decide_destination_pretied. Returns the destination
/// (see resolve_ball_d2_w).
template <bool Fast64, TieBreak TB>
NUBB_ALWAYS_INLINE inline std::size_t resolve_ball_d3_w(
    BinSlot* const slots, const std::size_t c0, const std::size_t c1, const std::size_t c2,
    const std::uint64_t w, const std::uint32_t tie_field, RunTotals& t) {
  if (c0 == c1 || c0 == c2 || c1 == c2) [[unlikely]] {
    const std::size_t choices[3] = {c0, c1, c2};
    const std::size_t dest = detail::decide_destination_pretied<Fast64, TB>(
        detail::SlotLoadView{slots}, choices, 3, w, tie_field);
    commit_amount<Fast64>(slots, dest, w, t);
    return dest;
  }
  const BinSlot s0 = slots[c0];
  const BinSlot s1 = slots[c1];
  const BinSlot s2 = slots[c2];
  const std::uint64_t n0 = s0.num + w;
  const std::uint64_t n1 = s1.num + w;
  const std::uint64_t n2 = s2.num + w;
  if constexpr (TB == TieBreak::kFirstChoice) {
    // Strict-less fold: the first minimum wins, no tie material consumed.
    std::size_t m = c0;
    std::uint64_t mn = n0;
    std::uint64_t mp = s0.cap;
    bool less;
    bool equal;
    load_less_equal<Fast64>(n1, s1.cap, mn, mp, less, equal);
    m = csel(less, c1, m);
    mn = csel(less, n1, mn);
    mp = csel(less, s1.cap, mp);
    load_less_equal<Fast64>(n2, s2.cap, mn, mp, less, equal);
    m = csel(less, c2, m);
    mn = csel(less, n2, mn);
    mp = csel(less, s2.cap, mp);
    commit_known<Fast64>(slots, m, mn, mp, w, t);
    return m;
  } else {
    // kPreferLargerCapacity orders candidates by the composite key (load
    // ascending, capacity descending) — the co-minimal class is then
    // exactly the capacity-filtered tie set of decide_destination; kUniform
    // orders by load alone. All three pairwise comparisons are computed
    // INDEPENDENTLY so their multiplies pipeline instead of chaining
    // through a sequential fold (the fold's key-select feeds the next
    // compare, ~10 serial cycles per step); class membership is then pure
    // combinational logic on the six relation bits, and the rank-j member
    // is picked by conditional moves. Branching to a tie-free fast path
    // instead is NOT profitable: at the paper's m = C operating point
    // loads are small integers, load-equal candidates are frequent, and
    // the branch mispredicts its way to ~2x slower.
    bool a;  // K1 < K0
    bool b;  // K2 < K0
    bool c;  // K2 < K1
    bool e;  // K1 == K0
    bool f;  // K2 == K0
    bool g;  // K2 == K1
    if constexpr (TB == TieBreak::kPreferLargerCapacity) {
      key_beats_tied<Fast64>(n1, s1.cap, n0, s0.cap, a, e);
      key_beats_tied<Fast64>(n2, s2.cap, n0, s0.cap, b, f);
      key_beats_tied<Fast64>(n2, s2.cap, n1, s1.cap, c, g);
    } else {
      load_less_equal<Fast64>(n1, s1.cap, n0, s0.cap, a, e);
      load_less_equal<Fast64>(n2, s2.cap, n0, s0.cap, b, f);
      load_less_equal<Fast64>(n2, s2.cap, n1, s1.cap, c, g);
    }
    // In-class flags: a candidate is co-minimal iff nothing sorts strictly
    // below it. Exact arithmetic makes the six bits mutually consistent.
    const std::uint32_t in0 = static_cast<std::uint32_t>(!a & !b);
    const std::uint32_t in1 = static_cast<std::uint32_t>((a | e) & !c);
    const std::uint32_t in2 = static_cast<std::uint32_t>((b | f) & (c | g));
    const std::uint32_t bc = in0 + in1 + in2;
    // The winner is the class member at rank j in candidate order (rank =
    // count of in-class candidates before it), selected arithmetically —
    // staging members in a tiny stack array costs a store-to-load forward
    // (~5 cycles) on the dest -> commit chain every ball.
    const std::uint32_t j = csel(bc == 3, tie_field % 3, tie_field & (bc - 1));
    const bool pick1 = (in1 != 0) & (j == in0);
    const bool pick2 = (in2 != 0) & (j == in0 + in1);
    const std::size_t dest = csel(pick2, c2, csel(pick1, c1, c0));
    // Re-read the winner's slot rather than csel-chaining its (num, cap)
    // through the whole body: the three slot loads are hot in L1, and
    // dropping six selects takes enough values out of the live set that
    // gcc stops spilling setcc results through the stack mid-compare.
    const std::uint64_t kn = slots[dest].num + w;
    const std::uint64_t kp = slots[dest].cap;
    commit_known<Fast64>(slots, dest, kn, kp, w, t);
    return dest;
  }
}

/// Candidate phase for one block: `count` candidate draws in draw order —
/// fused single-word draws under an alias table, one bulk bounded_fill for
/// uniform samplers (both consume one accepted 64-bit word per candidate,
/// with the identical low-half rejection rule).
NUBB_ALWAYS_INLINE inline void fill_candidates_v2(const std::uint64_t* const threshold,
                                                  const std::uint32_t* const alias,
                                                  const std::uint64_t n,
                                                  std::uint32_t* const cand,
                                                  const std::size_t count,
                                                  Xoshiro256StarStar& rng) {
  if (threshold == nullptr) {
    rng.bounded_fill(n, cand, count);
    return;
  }
  const std::uint64_t reject = (0 - n) % n;
  // Draw on a local copy of the generator: the caller's lives behind a
  // reference, and the threshold loads are uint64_t loads that could alias
  // its state words, so gcc otherwise writes all four state words back to
  // memory on every draw. The copy's address never escapes, which keeps the
  // whole state in registers across the block; one write-back at the end.
  Xoshiro256StarStar local = rng;
  for (std::size_t i = 0; i < count; ++i) {
    cand[i] = static_cast<std::uint32_t>(draw_candidate_v2(threshold, alias, n, reject, local));
  }
  rng = local;
}

/// Tie phase for one block: one raw word per packing unit, packed so the
/// phase stays a negligible share of the per-ball budget. Ball b's tie
/// material is: d = 2 — bit (b mod 64) of word b/64; d = 3 — the 32-bit
/// half (b even: low, odd: high) of word b/2; d >= 4 — all of word b.
NUBB_ALWAYS_INLINE inline void fill_ties_v2(std::uint64_t* const tie, const std::size_t words,
                                            Xoshiro256StarStar& rng) {
  // Local copy for the same aliasing reason as the candidate phase: `tie` is
  // a uint64_t* and would otherwise force a state write-back per word.
  Xoshiro256StarStar local = rng;
  for (std::size_t i = 0; i < words; ++i) tie[i] = local.next();
  rng = local;
}

/// Size-phase policy for unit balls: no draws, weight 1 — constant-folds the
/// whole phase out of the loop shapes below.
struct UnitSizes {
  NUBB_ALWAYS_INLINE void fill(Xoshiro256StarStar&, std::size_t) const noexcept {}
  NUBB_ALWAYS_INLINE std::uint64_t get(std::size_t) const noexcept { return 1; }
};

/// Size-phase policy for the weighted game: one block-bulk model fill (the
/// kind dispatch hoisted inside BallSizeModel::fill), sizes read back from
/// the kernel's buffer.
struct ModelSizes {
  const BallSizeModel* model;
  std::uint64_t* buf;
  void fill(Xoshiro256StarStar& rng, std::size_t count) const { model->fill(buf, count, rng); }
  NUBB_ALWAYS_INLINE std::uint64_t get(std::size_t i) const noexcept { return buf[i]; }
};

/// How many balls ahead the resolve loops prefetch their candidates' slots.
/// Prefetching is possible at all because the block's candidates are
/// resolved before any ball commits; it is gated at runtime by
/// MemoryConfig::prefetch (`pf_end` is 0 when off, so the disabled path
/// costs the same single compare per ball the bounds check always cost).
/// Prefetch order never touches the RNG, so on-vs-off is bit-identical.
inline constexpr std::size_t kPrefetchAhead = 8;

NUBB_ALWAYS_INLINE inline std::size_t prefetch_end(const bool prefetch,
                                                   const std::size_t nb) {
  return prefetch && nb > kPrefetchAhead ? nb - kPrefetchAhead : 0;
}

}  // namespace nubb::detail
