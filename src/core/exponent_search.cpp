#include "core/exponent_search.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace nubb {

double parabolic_argmin(double x0, double y0, double x1, double y1, double x2, double y2) {
  // Vertex of the parabola through three points (standard three-point form).
  const double denom = (x1 - x0) * (y1 - y2) - (x1 - x2) * (y1 - y0);
  if (std::abs(denom) < 1e-14) return x1;
  const double numer =
      (x1 - x0) * (x1 - x0) * (y1 - y2) - (x1 - x2) * (x1 - x2) * (y1 - y0);
  return x1 - 0.5 * numer / denom;
}

ExponentSweep sweep_exponent(const std::vector<std::uint64_t>& capacities, double t_min,
                             double t_max, double t_step, const GameConfig& game,
                             const ExperimentConfig& exp) {
  NUBB_REQUIRE_MSG(t_step > 0.0, "exponent sweep needs a positive step");
  NUBB_REQUIRE_MSG(t_min <= t_max, "exponent sweep needs t_min <= t_max");

  ExponentSweep sweep;
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;

  const auto steps = static_cast<std::size_t>(std::floor((t_max - t_min) / t_step + 1e-9));
  for (std::size_t s = 0; s <= steps; ++s) {
    const double t = t_min + static_cast<double>(s) * t_step;
    // Derive a per-point seed so that adding grid points does not reshuffle
    // the randomness of existing ones.
    ExperimentConfig point_exp = exp;
    point_exp.base_seed = mix_seed(exp.base_seed, static_cast<std::uint64_t>(s));

    const Summary summary = max_load_summary(capacities, SelectionPolicy::capacity_power(t),
                                             game, point_exp);
    sweep.points.push_back(ExponentPoint{t, summary.mean, summary.std_error});
    if (summary.mean < best) {
      best = summary.mean;
      best_index = sweep.points.size() - 1;
    }
  }

  sweep.best_exponent = sweep.points[best_index].exponent;
  sweep.best_mean_max_load = sweep.points[best_index].mean_max_load;

  if (best_index > 0 && best_index + 1 < sweep.points.size()) {
    const auto& a = sweep.points[best_index - 1];
    const auto& b = sweep.points[best_index];
    const auto& c = sweep.points[best_index + 1];
    sweep.refined_exponent = parabolic_argmin(a.exponent, a.mean_max_load, b.exponent,
                                              b.mean_max_load, c.exponent, c.mean_max_load);
    // Clamp the refinement to the bracketing interval; a noisy fit must not
    // leave the region the data actually supports.
    sweep.refined_exponent =
        std::min(std::max(sweep.refined_exponent, a.exponent), c.exponent);
  } else {
    sweep.refined_exponent = sweep.best_exponent;
  }
  return sweep;
}

}  // namespace nubb
