#pragma once

/// \file placement_kernel.hpp
/// Fused hot-path placement: draw d candidates, choose the destination,
/// commit the ball — one pass, specialised once per game.
///
/// Why a kernel object: the per-ball API (`place_one_ball`) re-validates its
/// configuration, re-resolves the sampler through a shared_ptr, branches on
/// the tie-break rule, and compares exact rational loads by 128-bit cross
/// multiplication — on every single ball, although all of it is loop
/// invariant. The kernel hoists validation and configuration dispatch to
/// construction time (the tie-break rule and the comparison width select one
/// fully specialised inner loop), caches raw pointers to the bin state and
/// the alias table, and compares loads with plain 64-bit multiplications
/// whenever the worst-case numerator times the largest capacity cannot
/// overflow, falling back to the exact 128-bit cross multiplication only
/// when it could.
///
/// One kernel, three historical loops: the commit stage adds an integer
/// `amount` to the destination slot's numerator — 1 for the core game, the
/// ball's weight for the weighted game — so the unweighted, weighted, and
/// batched-arrivals paths all run the same fused body. The decide and
/// commit stages operate on the interleaved (numerator, capacity) BinSlot
/// layout shared by BinArray and WeightedBinArray, so a random candidate
/// probe touches one cache line, not two.
///
/// RNG discipline: under stream v1 (the default) the kernel consumes random
/// draws in exactly the same order and quantity as the historic unfused
/// paths (the ball's size draw where the game is weighted, d candidate
/// draws, then one bounded draw only when a tie survives capacity
/// filtering), so every fixed-seed golden value is bit-identical to the
/// pre-kernel code. Under stream v2 (GameConfig::stream == RngStream::kV2)
/// each bulk run is consumed in blocks of up to kStreamBlock balls whose
/// draws are batch-filled up front in three phases — sizes, then one 64-bit
/// word per candidate (under an alias table the word's high product half is
/// the slot and its low half the acceptance mantissa; uniform samplers use
/// the identical bounded draw), then packed tie words — after which the
/// resolve pass is branch-predictable straight-line code consuming no RNG
/// at all; see docs/stream-v2.md for the exact draw-order contract. Both
/// streams realise the same stochastic process (v2's reuse of the bounded
/// draw's low product half and modulo tie picks sit below the 2^-53
/// threshold quantisation both streams share); only fixed-seed outcomes
/// differ.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bin_array.hpp"
#include "core/game.hpp"
#include "core/sampler.hpp"
#include "util/assert.hpp"
#include "util/int128.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nubb {

class WeightedBinArray;
class BallSizeModel;

namespace detail {

/// Decide stage's read view of the live interleaved slots: the numerator and
/// capacity of a candidate share one BinSlot (one cache line).
struct SlotLoadView {
  const BinSlot* slots;
  std::uint64_t num(std::size_t i) const noexcept { return slots[i].num; }
  std::uint64_t cap(std::size_t i) const noexcept { return slots[i].cap; }
};

/// Decide on numerators frozen at a batch boundary while capacities (and
/// commits) stay live — the batched-arrivals staleness contract.
struct StaleLoadView {
  const std::uint64_t* nums;
  const BinSlot* slots;
  std::uint64_t num(std::size_t i) const noexcept { return nums[i]; }
  std::uint64_t cap(std::size_t i) const noexcept { return slots[i].cap; }
};

/// Fused "choose" stage shared by every kernel path: among `choices[0..d)`,
/// minimise the exact post-allocation load `(view.num(i) + add) / view.cap(i)`
/// with set semantics (a bin drawn twice carries no extra tie-break weight),
/// then apply the tie-break `TB`. `add` is the committed amount: 1 for unit
/// balls, the ball's weight in the weighted game. `Fast64` selects 64-bit
/// cross multiplication; the caller guarantees `(view.num(i) + add) *
/// max(caps)` cannot wrap when it is set. `tie_pick(count)` resolves a
/// surviving tie of `count > 1` members to an index in [0, count); it is
/// invoked at most once per ball.
template <bool Fast64, TieBreak TB, class View, class TiePick>
inline std::size_t decide_destination_impl(const View& view, const std::size_t* choices,
                                           std::uint32_t d, std::uint64_t add,
                                           TiePick&& tie_pick) {
  constexpr std::uint32_t kMaxChoices = 64;
  std::size_t best[kMaxChoices];
  best[0] = choices[0];
  std::size_t best_count = 1;
  std::uint64_t best_num = view.num(choices[0]) + add;  // post-allocation numerator
  std::uint64_t best_cap = view.cap(choices[0]);

  for (std::uint32_t i = 1; i < d; ++i) {
    const std::size_t cand = choices[i];
    const std::uint64_t num = view.num(cand) + add;
    const std::uint64_t cap = view.cap(cand);
    bool less;
    bool equal;
    if constexpr (Fast64) {
      const std::uint64_t lhs = num * best_cap;
      const std::uint64_t rhs = best_num * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    } else {
      const uint128 lhs = static_cast<uint128>(num) * best_cap;
      const uint128 rhs = static_cast<uint128>(best_num) * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    }
    if (less) {
      best[0] = cand;
      best_count = 1;
      best_num = num;
      best_cap = cap;
    } else if (equal) {
      // Set semantics: a duplicate of a recorded candidate must not get
      // double weight in the uniform tie-break.
      bool duplicate = false;
      for (std::size_t j = 0; j < best_count; ++j) {
        if (best[j] == cand) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) best[best_count++] = cand;
    }
  }

  if (best_count == 1) return best[0];
  if constexpr (TB == TieBreak::kFirstChoice) {
    return best[0];  // candidates were recorded in choice order
  } else if constexpr (TB == TieBreak::kUniform) {
    return best[tie_pick(best_count)];
  } else {
    // Algorithm 1 lines 4-6: keep only maximum-capacity members of B_opt.
    std::uint64_t cmax = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (view.cap(best[j]) > cmax) cmax = view.cap(best[j]);
    }
    std::size_t filtered = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (view.cap(best[j]) == cmax) best[filtered++] = best[j];
    }
    if (filtered == 1) return best[0];
    return best[tie_pick(filtered)];
  }
}

/// Stream-v1 form: a surviving tie consumes one bounded draw at resolve
/// time — identical to the historic `choose_destination`.
template <bool Fast64, TieBreak TB, class View>
inline std::size_t decide_destination(const View& view, const std::size_t* choices,
                                      std::uint32_t d, std::uint64_t add,
                                      Xoshiro256StarStar& rng) {
  return decide_destination_impl<Fast64, TB>(
      view, choices, d, add,
      [&rng](std::size_t count) { return static_cast<std::size_t>(rng.bounded(count)); });
}

/// Stream-v2 form: the ball's tie material was drawn in the block's tie
/// phase; a surviving tie of `count` members resolves to `tie_word % count`
/// (modulo bias <= count / 2^32, far below the 2^-53 threshold quantisation
/// of the candidate draws). Consumes no RNG.
template <bool Fast64, TieBreak TB, class View>
inline std::size_t decide_destination_pretied(const View& view, const std::size_t* choices,
                                              std::uint32_t d, std::uint64_t add,
                                              std::uint64_t tie_word) {
  return decide_destination_impl<Fast64, TB>(
      view, choices, d, add,
      [tie_word](std::size_t count) { return static_cast<std::size_t>(tie_word % count); });
}

}  // namespace detail

/// One game's placement loop, fused and pre-validated. Construct once per
/// game (construction is O(1)); every driver — sequential, batched,
/// checkpointed, growth, reallocation, weighted — funnels its balls through
/// here.
///
/// Pointer caching: the kernel holds raw pointers into the bin array's slots
/// and the sampler's alias table. `clear()` and `BinArray::remove_ball()`
/// keep the kernel valid; `append_bins()` does not (construct a fresh kernel
/// after growing the array). The bin array and sampler must outlive the
/// kernel.
class PlacementKernel {
 public:
  static constexpr std::uint32_t kMaxChoices = 64;

  /// Stream-v2 block size: each bulk run consumes its balls in blocks of up
  /// to this many, whose draws are batch-filled before any ball resolves.
  /// Part of the stream-v2 draw-order contract (docs/stream-v2.md): changing
  /// it changes v2 fixed-seed outcomes.
  static constexpr std::size_t kStreamBlock = 256;

  /// Validates once what the per-ball path used to validate per ball
  /// (choice count, sampler/bin size match, distinct-mode support).
  /// `planned_balls` bounds how many balls will be committed through this
  /// kernel; 0 means the GameConfig convention (cfg.balls, or m = C when
  /// cfg.balls is 0). The bound selects the load-comparison width, and
  /// run() enforces it.
  PlacementKernel(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                  std::uint64_t planned_balls = 0);

  /// Weighted form: the same fused loops committing integer ball weights
  /// into a WeightedBinArray. `planned_balls` must be explicit (the m = C
  /// convention is scaled by mean ball size, which the caller owns);
  /// `max_ball_weight` is the largest weight any single ball can carry —
  /// together they bound the worst-case numerator for the comparison-width
  /// choice exactly as `planned_balls` alone does for unit balls.
  PlacementKernel(WeightedBinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                  std::uint64_t planned_balls, std::uint64_t max_ball_weight);

  /// Balls this kernel is sized for.
  std::uint64_t planned_balls() const noexcept { return planned_; }

  /// Balls committed through this kernel so far.
  std::uint64_t placed_balls() const noexcept { return placed_; }

  /// True when the kernel compares loads with 64-bit arithmetic (exposed
  /// for tests and diagnostics).
  bool uses_fast64_path() const noexcept { return fast64_; }

  /// The resolve implementation the bulk stream-v2 runs actually execute
  /// (never just what was requested): kAvx2 only when GameConfig::simd
  /// resolved to it AND the game shape has a vector form (stream v2,
  /// 64-bit comparison width, independent choices). Scalar and AVX2 runs
  /// are bit-identical — this is telemetry, not a result knob.
  SimdImpl simd_impl() const noexcept { return simd_; }

  /// Place one unit ball on the live loads; returns the destination bin.
  /// \pre the caller keeps the net ball count within the planned horizon
  ///      (run() checks this; the single-ball form trusts the caller so
  ///      remove-then-place loops like rebalancing stay O(1) per move).
  std::size_t place_one(Xoshiro256StarStar& rng) {
    ++placed_;
    return place_fn_(*this, nullptr, 1, rng);
  }

  /// Place one ball of weight `amount` (same precondition as place_one; the
  /// caller keeps the committed amounts within the planned horizon).
  std::size_t place_one_amount(std::uint64_t amount, Xoshiro256StarStar& rng) {
    ++placed_;
    return place_fn_(*this, nullptr, amount, rng);
  }

  /// Place one unit ball deciding on `stale_counts` (ball counts frozen at a
  /// batch boundary, one entry per bin) while committing to the live bins —
  /// the batched-arrivals mode.
  std::size_t place_one_stale(const std::uint64_t* stale_counts, Xoshiro256StarStar& rng) {
    ++placed_;
    return place_fn_(*this, stale_counts, 1, rng);
  }

  /// Place `count` unit balls on the live loads in one fused loop.
  void run(std::uint64_t count, Xoshiro256StarStar& rng);

  /// Place `count` balls whose weights are drawn per ball from `sizes`
  /// (size draw first, then candidates — the historic weighted RNG order).
  /// Requires construction over a WeightedBinArray whose `max_ball_weight`
  /// bound covers everything `sizes` can return.
  void run_weighted(std::uint64_t count, const BallSizeModel& sizes,
                    Xoshiro256StarStar& rng);

 private:
  using PlaceFn = std::size_t (*)(PlacementKernel&, const std::uint64_t*, std::uint64_t,
                                  Xoshiro256StarStar&);
  using RunFn = void (*)(PlacementKernel&, std::uint64_t, Xoshiro256StarStar&);
  using RunWeightedFn = void (*)(PlacementKernel&, std::uint64_t, const BallSizeModel&,
                                 Xoshiro256StarStar&);

  template <bool Fast64, TieBreak TB, RngStream S>
  static std::size_t place_impl(PlacementKernel& k, const std::uint64_t* stale_counts,
                                std::uint64_t amount, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_impl(PlacementKernel& k, std::uint64_t count, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_weighted_impl(PlacementKernel& k, std::uint64_t count,
                                const BallSizeModel& sizes, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB, class AmountFn>
  static void run_loop(PlacementKernel& k, std::uint64_t count, AmountFn next_amount,
                       Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_v2_impl(PlacementKernel& k, std::uint64_t count, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_weighted_v2_impl(PlacementKernel& k, std::uint64_t count,
                                   const BallSizeModel& sizes, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB, class Sizes>
  static void run_loop_v2(PlacementKernel& k, std::uint64_t count, Sizes sz,
                          Xoshiro256StarStar& rng);

  // AVX2 counterparts of the stream-v2 bulk entry points, defined and
  // explicitly instantiated in placement_kernel_avx2.cpp (the only core TU
  // compiled with -mavx2; it builds aborting stubs when the flag is
  // unavailable, so these always link). Installed by select_for_tie_break
  // only when simd_ resolved to kAvx2 on a Fast64 non-distinct v2 kernel;
  // bit-identical to run_v2_impl / run_weighted_v2_impl.
  template <TieBreak TB>
  static void run_v2_avx2_impl(PlacementKernel& k, std::uint64_t count,
                               Xoshiro256StarStar& rng);
  template <TieBreak TB>
  static void run_weighted_v2_avx2_impl(PlacementKernel& k, std::uint64_t count,
                                        const BallSizeModel& sizes, Xoshiro256StarStar& rng);
  template <TieBreak TB, class Sizes>
  static void run_loop_v2_avx2(PlacementKernel& k, std::uint64_t count, Sizes sz,
                               Xoshiro256StarStar& rng);

  void validate(const BinSampler& sampler, std::size_t bins, const GameConfig& cfg) const;
  void select_impl(TieBreak tie_break);
  template <TieBreak TB>
  void select_for_tie_break();

  // Raw pointers into the owning bin array (BinArray or WeightedBinArray):
  // interleaved slots plus the bookkeeping the commit stage maintains with
  // add_ball/add_weight semantics.
  BinSlot* slots_ = nullptr;
  std::uint64_t* total_ = nullptr;
  Load* max_load_ = nullptr;
  std::size_t* argmax_ = nullptr;
  const AliasTable* table_ = nullptr;  // null => uniform draw over n_
  std::size_t n_ = 0;
  std::uint32_t d_ = 1;
  bool distinct_ = false;
  bool fast64_ = false;
  bool prefetch_ = true;  // cross-ball candidate prefetch in bulk v2 runs
  // Every bin capacity fits 32 bits: lets the AVX2 resolve kernels use the
  // halved-multiply cross products (the capacity is always the multiplier).
  bool caps_u32_ = false;
  SimdImpl simd_ = SimdImpl::kScalar;  // what bulk v2 runs execute (see simd_impl)
  RngStream stream_ = RngStream::kV1;
  std::uint64_t planned_ = 0;
  std::uint64_t placed_ = 0;
  PlaceFn place_fn_ = nullptr;
  RunFn run_fn_ = nullptr;
  RunWeightedFn run_weighted_fn_ = nullptr;
  // Candidate staging buffer, zeroed once at construction instead of once
  // per ball (the draw stage always overwrites entries [0, d) — kernels are
  // single-threaded scratch, one per worker, never shared).
  std::size_t choices_[kMaxChoices] = {};
  // Stream-v2 block buffers (kStreamBlock * d resolved candidates, the
  // block's packed tie words, and one size per ball for the weighted loop).
  // Allocated lazily by the first bulk v2 run so per-ball entry points never
  // pay for them.
  std::vector<std::uint32_t> v2_cand_;
  std::vector<std::uint64_t> v2_tie_;
  std::vector<std::uint64_t> v2_sizes_;
};

}  // namespace nubb
