#pragma once

/// \file placement_kernel.hpp
/// Fused hot-path placement: draw d candidates, choose the destination,
/// commit the ball — one pass, specialised once per game.
///
/// Why a kernel object: the per-ball API (`place_one_ball`) re-validates its
/// configuration, re-resolves the sampler through a shared_ptr, branches on
/// the tie-break rule, and compares exact rational loads by 128-bit cross
/// multiplication — on every single ball, although all of it is loop
/// invariant. The kernel hoists validation and configuration dispatch to
/// construction time (the tie-break rule and the comparison width select one
/// fully specialised inner loop), caches raw pointers to the bin state and
/// the alias table, and compares loads with plain 64-bit multiplications
/// whenever `(balls + 1) * max_capacity` cannot overflow, falling back to
/// the exact 128-bit cross multiplication only when it could.
///
/// RNG discipline: the kernel consumes random draws in exactly the same
/// order and quantity as the historic unfused path (d candidate draws, then
/// one bounded draw only when a tie survives capacity filtering), so every
/// fixed-seed golden value is bit-identical to the pre-kernel code.

#include <cstddef>
#include <cstdint>

#include "core/bin_array.hpp"
#include "core/game.hpp"
#include "core/sampler.hpp"
#include "util/assert.hpp"
#include "util/int128.hpp"
#include "util/rng.hpp"

namespace nubb {

namespace detail {

/// Fused "choose" stage, shared by the unweighted kernel and the weighted
/// driver: among `choices[0..d)`, minimise the exact post-allocation load
/// `(numerators[i] + add) / caps[i]` with set semantics (a bin drawn twice
/// carries no extra tie-break weight), then apply the tie-break `TB`.
/// `Fast64` selects 64-bit cross multiplication; the caller guarantees
/// `(numerators[i] + add) * max(caps)` cannot wrap when it is set.
/// Consumes at most one bounded RNG draw, and only on a surviving tie —
/// identical to the historic `choose_destination`.
template <bool Fast64, TieBreak TB>
inline std::size_t decide_destination(const std::uint64_t* numerators,
                                      const std::uint64_t* caps, const std::size_t* choices,
                                      std::uint32_t d, std::uint64_t add,
                                      Xoshiro256StarStar& rng) {
  constexpr std::uint32_t kMaxChoices = 64;
  std::size_t best[kMaxChoices];
  best[0] = choices[0];
  std::size_t best_count = 1;
  std::uint64_t best_num = numerators[choices[0]] + add;  // post-allocation numerator
  std::uint64_t best_cap = caps[choices[0]];

  for (std::uint32_t i = 1; i < d; ++i) {
    const std::size_t cand = choices[i];
    const std::uint64_t num = numerators[cand] + add;
    const std::uint64_t cap = caps[cand];
    bool less;
    bool equal;
    if constexpr (Fast64) {
      const std::uint64_t lhs = num * best_cap;
      const std::uint64_t rhs = best_num * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    } else {
      const uint128 lhs = static_cast<uint128>(num) * best_cap;
      const uint128 rhs = static_cast<uint128>(best_num) * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    }
    if (less) {
      best[0] = cand;
      best_count = 1;
      best_num = num;
      best_cap = cap;
    } else if (equal) {
      // Set semantics: a duplicate of a recorded candidate must not get
      // double weight in the uniform tie-break.
      bool duplicate = false;
      for (std::size_t j = 0; j < best_count; ++j) {
        if (best[j] == cand) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) best[best_count++] = cand;
    }
  }

  if (best_count == 1) return best[0];
  if constexpr (TB == TieBreak::kFirstChoice) {
    return best[0];  // candidates were recorded in choice order
  } else if constexpr (TB == TieBreak::kUniform) {
    return best[rng.bounded(best_count)];
  } else {
    // Algorithm 1 lines 4-6: keep only maximum-capacity members of B_opt.
    std::uint64_t cmax = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (caps[best[j]] > cmax) cmax = caps[best[j]];
    }
    std::size_t filtered = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (caps[best[j]] == cmax) best[filtered++] = best[j];
    }
    if (filtered == 1) return best[0];
    return best[rng.bounded(filtered)];
  }
}

}  // namespace detail

/// One game's placement loop, fused and pre-validated. Construct once per
/// game (construction is O(1)); every driver — sequential, batched,
/// checkpointed, growth, reallocation — funnels its balls through here.
///
/// Pointer caching: the kernel holds raw pointers into the BinArray and the
/// sampler's alias table. `BinArray::clear()` and `remove_ball()` keep the
/// kernel valid; `append_bins()` does not (construct a fresh kernel after
/// growing the array). The sampler must outlive the kernel.
class PlacementKernel {
 public:
  static constexpr std::uint32_t kMaxChoices = 64;

  /// Validates once what the per-ball path used to validate per ball
  /// (choice count, sampler/bin size match, distinct-mode support).
  /// `planned_balls` bounds how many balls will be committed through this
  /// kernel; 0 means the GameConfig convention (cfg.balls, or m = C when
  /// cfg.balls is 0). The bound selects the load-comparison width, and
  /// run() enforces it.
  PlacementKernel(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                  std::uint64_t planned_balls = 0);

  /// Balls this kernel is sized for.
  std::uint64_t planned_balls() const noexcept { return planned_; }

  /// Balls committed through this kernel so far.
  std::uint64_t placed_balls() const noexcept { return placed_; }

  /// True when the kernel compares loads with 64-bit arithmetic (exposed
  /// for tests and diagnostics).
  bool uses_fast64_path() const noexcept { return fast64_; }

  /// Place one ball on the live loads; returns the destination bin.
  /// \pre the caller keeps the net ball count within the planned horizon
  ///      (run() checks this; the single-ball form trusts the caller so
  ///      remove-then-place loops like rebalancing stay O(1) per move).
  std::size_t place_one(Xoshiro256StarStar& rng) {
    ++placed_;
    return place_fn_(*this, counts_, rng);
  }

  /// Place one ball deciding on `stale_counts` (ball counts frozen at a
  /// batch boundary, one entry per bin) while committing to the live bins —
  /// the batched-arrivals mode.
  std::size_t place_one_stale(const std::uint64_t* stale_counts, Xoshiro256StarStar& rng) {
    ++placed_;
    return place_fn_(*this, stale_counts, rng);
  }

  /// Place `count` balls on the live loads in one fused loop.
  void run(std::uint64_t count, Xoshiro256StarStar& rng);

 private:
  using PlaceFn = std::size_t (*)(PlacementKernel&, const std::uint64_t*,
                                  Xoshiro256StarStar&);
  using RunFn = void (*)(PlacementKernel&, std::uint64_t, Xoshiro256StarStar&);

  template <bool Fast64, TieBreak TB>
  static std::size_t place_impl(PlacementKernel& k, const std::uint64_t* counts,
                                Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_impl(PlacementKernel& k, std::uint64_t count, Xoshiro256StarStar& rng);

  void select_impl(TieBreak tie_break);

  BinArray& bins_;
  const AliasTable* table_ = nullptr;      // null => uniform draw over n_
  const std::uint64_t* counts_ = nullptr;  // live ball counts (decide stage)
  std::uint64_t* mut_counts_ = nullptr;    // same array, commit stage
  const std::uint64_t* caps_ = nullptr;
  std::size_t n_ = 0;
  std::uint32_t d_ = 1;
  bool distinct_ = false;
  bool fast64_ = false;
  std::uint64_t planned_ = 0;
  std::uint64_t placed_ = 0;
  PlaceFn place_fn_ = nullptr;
  RunFn run_fn_ = nullptr;
  // Candidate staging buffer, zeroed once at construction instead of once
  // per ball (the draw stage always overwrites entries [0, d) — kernels are
  // single-threaded scratch, one per worker, never shared).
  std::size_t choices_[kMaxChoices] = {};
};

}  // namespace nubb
