#pragma once

/// \file placement_kernel.hpp
/// Fused hot-path placement: draw d candidates, choose the destination,
/// commit the ball — one pass, specialised once per game.
///
/// Why a kernel object: the per-ball API (`place_one_ball`) re-validates its
/// configuration, re-resolves the sampler through a shared_ptr, branches on
/// the tie-break rule, and compares exact rational loads by 128-bit cross
/// multiplication — on every single ball, although all of it is loop
/// invariant. The kernel hoists validation and configuration dispatch to
/// construction time (the tie-break rule and the comparison width select one
/// fully specialised inner loop), caches raw pointers to the bin state and
/// the alias table, and compares loads with plain 64-bit multiplications
/// whenever the worst-case numerator times the largest capacity cannot
/// overflow, falling back to the exact 128-bit cross multiplication only
/// when it could.
///
/// One kernel, three historical loops: the commit stage adds an integer
/// `amount` to the destination slot's numerator — 1 for the core game, the
/// ball's weight for the weighted game — so the unweighted, weighted, and
/// batched-arrivals paths all run the same fused body. The decide and
/// commit stages operate on the interleaved (numerator, capacity) BinSlot
/// layout shared by BinArray and WeightedBinArray, so a random candidate
/// probe touches one cache line, not two.
///
/// RNG discipline: the kernel consumes random draws in exactly the same
/// order and quantity as the historic unfused paths (the ball's size draw
/// where the game is weighted, d candidate draws, then one bounded draw only
/// when a tie survives capacity filtering), so every fixed-seed golden value
/// is bit-identical to the pre-kernel code.

#include <cstddef>
#include <cstdint>

#include "core/bin_array.hpp"
#include "core/game.hpp"
#include "core/sampler.hpp"
#include "util/assert.hpp"
#include "util/int128.hpp"
#include "util/rng.hpp"

namespace nubb {

class WeightedBinArray;
class BallSizeModel;

namespace detail {

/// Decide stage's read view of the live interleaved slots: the numerator and
/// capacity of a candidate share one BinSlot (one cache line).
struct SlotLoadView {
  const BinSlot* slots;
  std::uint64_t num(std::size_t i) const noexcept { return slots[i].num; }
  std::uint64_t cap(std::size_t i) const noexcept { return slots[i].cap; }
};

/// Decide on numerators frozen at a batch boundary while capacities (and
/// commits) stay live — the batched-arrivals staleness contract.
struct StaleLoadView {
  const std::uint64_t* nums;
  const BinSlot* slots;
  std::uint64_t num(std::size_t i) const noexcept { return nums[i]; }
  std::uint64_t cap(std::size_t i) const noexcept { return slots[i].cap; }
};

/// Fused "choose" stage shared by every kernel path: among `choices[0..d)`,
/// minimise the exact post-allocation load `(view.num(i) + add) / view.cap(i)`
/// with set semantics (a bin drawn twice carries no extra tie-break weight),
/// then apply the tie-break `TB`. `add` is the committed amount: 1 for unit
/// balls, the ball's weight in the weighted game. `Fast64` selects 64-bit
/// cross multiplication; the caller guarantees `(view.num(i) + add) *
/// max(caps)` cannot wrap when it is set. Consumes at most one bounded RNG
/// draw, and only on a surviving tie — identical to the historic
/// `choose_destination`.
template <bool Fast64, TieBreak TB, class View>
inline std::size_t decide_destination(const View& view, const std::size_t* choices,
                                      std::uint32_t d, std::uint64_t add,
                                      Xoshiro256StarStar& rng) {
  constexpr std::uint32_t kMaxChoices = 64;
  std::size_t best[kMaxChoices];
  best[0] = choices[0];
  std::size_t best_count = 1;
  std::uint64_t best_num = view.num(choices[0]) + add;  // post-allocation numerator
  std::uint64_t best_cap = view.cap(choices[0]);

  for (std::uint32_t i = 1; i < d; ++i) {
    const std::size_t cand = choices[i];
    const std::uint64_t num = view.num(cand) + add;
    const std::uint64_t cap = view.cap(cand);
    bool less;
    bool equal;
    if constexpr (Fast64) {
      const std::uint64_t lhs = num * best_cap;
      const std::uint64_t rhs = best_num * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    } else {
      const uint128 lhs = static_cast<uint128>(num) * best_cap;
      const uint128 rhs = static_cast<uint128>(best_num) * cap;
      less = lhs < rhs;
      equal = lhs == rhs;
    }
    if (less) {
      best[0] = cand;
      best_count = 1;
      best_num = num;
      best_cap = cap;
    } else if (equal) {
      // Set semantics: a duplicate of a recorded candidate must not get
      // double weight in the uniform tie-break.
      bool duplicate = false;
      for (std::size_t j = 0; j < best_count; ++j) {
        if (best[j] == cand) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) best[best_count++] = cand;
    }
  }

  if (best_count == 1) return best[0];
  if constexpr (TB == TieBreak::kFirstChoice) {
    return best[0];  // candidates were recorded in choice order
  } else if constexpr (TB == TieBreak::kUniform) {
    return best[rng.bounded(best_count)];
  } else {
    // Algorithm 1 lines 4-6: keep only maximum-capacity members of B_opt.
    std::uint64_t cmax = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (view.cap(best[j]) > cmax) cmax = view.cap(best[j]);
    }
    std::size_t filtered = 0;
    for (std::size_t j = 0; j < best_count; ++j) {
      if (view.cap(best[j]) == cmax) best[filtered++] = best[j];
    }
    if (filtered == 1) return best[0];
    return best[rng.bounded(filtered)];
  }
}

}  // namespace detail

/// One game's placement loop, fused and pre-validated. Construct once per
/// game (construction is O(1)); every driver — sequential, batched,
/// checkpointed, growth, reallocation, weighted — funnels its balls through
/// here.
///
/// Pointer caching: the kernel holds raw pointers into the bin array's slots
/// and the sampler's alias table. `clear()` and `BinArray::remove_ball()`
/// keep the kernel valid; `append_bins()` does not (construct a fresh kernel
/// after growing the array). The bin array and sampler must outlive the
/// kernel.
class PlacementKernel {
 public:
  static constexpr std::uint32_t kMaxChoices = 64;

  /// Validates once what the per-ball path used to validate per ball
  /// (choice count, sampler/bin size match, distinct-mode support).
  /// `planned_balls` bounds how many balls will be committed through this
  /// kernel; 0 means the GameConfig convention (cfg.balls, or m = C when
  /// cfg.balls is 0). The bound selects the load-comparison width, and
  /// run() enforces it.
  PlacementKernel(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                  std::uint64_t planned_balls = 0);

  /// Weighted form: the same fused loops committing integer ball weights
  /// into a WeightedBinArray. `planned_balls` must be explicit (the m = C
  /// convention is scaled by mean ball size, which the caller owns);
  /// `max_ball_weight` is the largest weight any single ball can carry —
  /// together they bound the worst-case numerator for the comparison-width
  /// choice exactly as `planned_balls` alone does for unit balls.
  PlacementKernel(WeightedBinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                  std::uint64_t planned_balls, std::uint64_t max_ball_weight);

  /// Balls this kernel is sized for.
  std::uint64_t planned_balls() const noexcept { return planned_; }

  /// Balls committed through this kernel so far.
  std::uint64_t placed_balls() const noexcept { return placed_; }

  /// True when the kernel compares loads with 64-bit arithmetic (exposed
  /// for tests and diagnostics).
  bool uses_fast64_path() const noexcept { return fast64_; }

  /// Place one unit ball on the live loads; returns the destination bin.
  /// \pre the caller keeps the net ball count within the planned horizon
  ///      (run() checks this; the single-ball form trusts the caller so
  ///      remove-then-place loops like rebalancing stay O(1) per move).
  std::size_t place_one(Xoshiro256StarStar& rng) {
    ++placed_;
    *view_stale_ = true;
    return place_fn_(*this, nullptr, 1, rng);
  }

  /// Place one ball of weight `amount` (same precondition as place_one; the
  /// caller keeps the committed amounts within the planned horizon).
  std::size_t place_one_amount(std::uint64_t amount, Xoshiro256StarStar& rng) {
    ++placed_;
    *view_stale_ = true;
    return place_fn_(*this, nullptr, amount, rng);
  }

  /// Place one unit ball deciding on `stale_counts` (ball counts frozen at a
  /// batch boundary, one entry per bin) while committing to the live bins —
  /// the batched-arrivals mode.
  std::size_t place_one_stale(const std::uint64_t* stale_counts, Xoshiro256StarStar& rng) {
    ++placed_;
    *view_stale_ = true;
    return place_fn_(*this, stale_counts, 1, rng);
  }

  /// Place `count` unit balls on the live loads in one fused loop.
  void run(std::uint64_t count, Xoshiro256StarStar& rng);

  /// Place `count` balls whose weights are drawn per ball from `sizes`
  /// (size draw first, then candidates — the historic weighted RNG order).
  /// Requires construction over a WeightedBinArray whose `max_ball_weight`
  /// bound covers everything `sizes` can return.
  void run_weighted(std::uint64_t count, const BallSizeModel& sizes,
                    Xoshiro256StarStar& rng);

 private:
  using PlaceFn = std::size_t (*)(PlacementKernel&, const std::uint64_t*, std::uint64_t,
                                  Xoshiro256StarStar&);
  using RunFn = void (*)(PlacementKernel&, std::uint64_t, Xoshiro256StarStar&);
  using RunWeightedFn = void (*)(PlacementKernel&, std::uint64_t, const BallSizeModel&,
                                 Xoshiro256StarStar&);

  template <bool Fast64, TieBreak TB>
  static std::size_t place_impl(PlacementKernel& k, const std::uint64_t* stale_counts,
                                std::uint64_t amount, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_impl(PlacementKernel& k, std::uint64_t count, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB>
  static void run_weighted_impl(PlacementKernel& k, std::uint64_t count,
                                const BallSizeModel& sizes, Xoshiro256StarStar& rng);
  template <bool Fast64, TieBreak TB, class AmountFn>
  static void run_loop(PlacementKernel& k, std::uint64_t count, AmountFn next_amount,
                       Xoshiro256StarStar& rng);

  void validate(const BinSampler& sampler, std::size_t bins, const GameConfig& cfg) const;
  void select_impl(TieBreak tie_break);

  // Raw pointers into the owning bin array (BinArray or WeightedBinArray):
  // interleaved slots plus the bookkeeping the commit stage maintains with
  // add_ball/add_weight semantics.
  BinSlot* slots_ = nullptr;
  std::uint64_t* total_ = nullptr;
  Load* max_load_ = nullptr;
  std::size_t* argmax_ = nullptr;
  bool* view_stale_ = nullptr;  // flat counts/weights view invalidation
  const AliasTable* table_ = nullptr;  // null => uniform draw over n_
  std::size_t n_ = 0;
  std::uint32_t d_ = 1;
  bool distinct_ = false;
  bool fast64_ = false;
  std::uint64_t planned_ = 0;
  std::uint64_t placed_ = 0;
  PlaceFn place_fn_ = nullptr;
  RunFn run_fn_ = nullptr;
  RunWeightedFn run_weighted_fn_ = nullptr;
  // Candidate staging buffer, zeroed once at construction instead of once
  // per ball (the draw stage always overwrites entries [0, d) — kernels are
  // single-threaded scratch, one per worker, never shared).
  std::size_t choices_[kMaxChoices] = {};
};

}  // namespace nubb
