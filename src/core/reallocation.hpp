#pragma once

/// \file reallocation.hpp
/// Incremental growth and minimal reallocation (Section 4.3's closing
/// remark: "data could of course be reallocated instead ... a number of
/// algorithms have been proposed which are able to perform a reorganization
/// with minimum overhead").
///
/// The paper's growth experiments re-place every ball from scratch whenever
/// a disk batch arrives. This module implements the operationally realistic
/// alternatives and measures what they cost:
///
///  * **incremental fill** — old balls stay where they are; only the newly
///    added capacity's worth of balls is thrown (with selection
///    probabilities rebuilt for the grown array). Existing data never moves,
///    but old bins keep their historical (now too-high) share.
///  * **greedy rebalance** — after an incremental fill, repeatedly take one
///    ball from a maximally loaded bin and re-place it with d fresh choices,
///    until the max load reaches a target or a migration budget is spent.
///    This is the "minimum overhead" reorganisation: each move is one data
///    migration.

#include <cstdint>
#include <vector>

#include "core/builder.hpp"
#include "core/game.hpp"
#include "core/growth.hpp"
#include "core/probability.hpp"

namespace nubb {

/// Outcome of a rebalance pass.
struct RebalanceResult {
  std::uint64_t moves = 0;          ///< balls actually migrated
  std::uint64_t failed_moves = 0;   ///< draws that landed back in the source bin
  double final_max_load = 0.0;
  bool reached_target = false;
};

/// Greedy migration: while max load > target and budget remains, remove one
/// ball from a maximally loaded bin and re-place it with `cfg.choices`
/// fresh draws from `sampler` (Algorithm 1 on the current state). A
/// re-placement that lands back in the source bin is undone and counted in
/// `failed_moves`; after 3 consecutive failures on the same bin the pass
/// gives up (the target is unreachable by single-ball moves).
/// \pre target_max_load > 0, sampler matches bins.
RebalanceResult rebalance(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                          double target_max_load, std::uint64_t max_moves,
                          Xoshiro256StarStar& rng);

/// One measured step of an incremental growth simulation.
struct IncrementalGrowthStep {
  std::size_t disks = 0;
  std::uint64_t total_capacity = 0;
  double incremental_max_load = 0.0;  ///< after filling new capacity only
  double rebalanced_max_load = 0.0;   ///< after the optional rebalance pass
  std::uint64_t moves = 0;            ///< migrations spent by the pass
};

/// Grow a system from `first_batch` disks to `total_disks` in visible steps
/// of `disks_per_step`, throwing only the newly added capacity's worth of
/// balls at each step (m = C is maintained as an invariant). If
/// `rebalance_target_gap >= 0`, each step ends with a rebalance pass towards
/// max load <= average + gap, spending at most `max_moves_per_step`
/// migrations.
/// \pre disks_per_step >= 1; growth parameters as in growth_capacities.
std::vector<IncrementalGrowthStep> simulate_incremental_growth(
    const GrowthModel& model, std::size_t total_disks, std::size_t first_batch,
    std::size_t batch_size, std::size_t disks_per_step, const SelectionPolicy& policy,
    const GameConfig& cfg, double rebalance_target_gap, std::uint64_t max_moves_per_step,
    Xoshiro256StarStar& rng);

}  // namespace nubb
