#pragma once

/// \file bin_array.hpp
/// The system state: `n` bins with positive integer capacities and the
/// number of balls currently allocated to each.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/load.hpp"

namespace nubb {

/// Bins with integer capacities (paper Section 2). Stores capacities and
/// per-bin ball counts; maintains the total capacity C and total ball count,
/// and tracks the running maximum load online (loads only ever grow, so the
/// maximum is monotone and can be maintained in O(1) per allocation).
class BinArray {
 public:
  /// \pre capacities non-empty; every capacity >= 1.
  explicit BinArray(std::vector<std::uint64_t> capacities);

  std::size_t size() const noexcept { return capacities_.size(); }

  std::uint64_t capacity(std::size_t i) const noexcept { return capacities_[i]; }
  std::uint64_t balls(std::size_t i) const noexcept { return balls_[i]; }

  /// Total capacity C = sum of capacities.
  std::uint64_t total_capacity() const noexcept { return total_capacity_; }

  /// Largest single bin capacity (cached; O(1)). The placement kernel uses
  /// it to decide whether 64-bit load comparisons can overflow.
  std::uint64_t max_capacity() const noexcept { return max_capacity_; }

  /// Total number of balls currently allocated.
  std::uint64_t total_balls() const noexcept { return total_balls_; }

  /// Exact load of bin i.
  Load load(std::size_t i) const noexcept { return Load{balls_[i], capacities_[i]}; }

  /// Floating-point load of bin i (reporting only).
  double load_value(std::size_t i) const noexcept { return load(i).value(); }

  /// Average load = total_balls / total_capacity (the optimum when m = C
  /// is 1 by construction).
  double average_load() const noexcept {
    return static_cast<double>(total_balls_) / static_cast<double>(total_capacity_);
  }

  /// Allocate one ball to bin i; O(1), updates the running maximum.
  void add_ball(std::size_t i) noexcept {
    ++balls_[i];
    ++total_balls_;
    const Load l{balls_[i], capacities_[i]};
    if (max_load_ < l) {
      max_load_ = l;
      argmax_ = i;
    }
  }

  /// Running maximum load (exact). {0, 1} when no ball has been allocated.
  Load max_load() const noexcept { return max_load_; }

  /// Index of a bin attaining the maximum load (the most recent one to reach
  /// it). Meaningful only after at least one ball.
  std::size_t argmax_bin() const noexcept { return argmax_; }

  /// Remove one ball from bin i. O(1) unless bin i currently attains the
  /// maximum load, in which case the maximum is recomputed by a full scan.
  /// \pre balls(i) >= 1.
  void remove_ball(std::size_t i);

  /// Append new empty bins (dynamic growth, Section 4.3). Existing balls
  /// and the running maximum are unaffected; the total capacity grows.
  /// \pre every new capacity >= 1.
  void append_bins(const std::vector<std::uint64_t>& new_capacities);

  /// Remove all balls, keep capacities.
  void clear() noexcept;

  const std::vector<std::uint64_t>& capacities() const noexcept { return capacities_; }
  const std::vector<std::uint64_t>& ball_counts() const noexcept { return balls_; }

  /// All bin loads as doubles (reporting).
  std::vector<double> load_values() const;

  /// Sum of capacities of bins with capacity >= threshold (the paper's
  /// C_b / C_s split for "big" vs "small" bins).
  std::uint64_t capacity_at_least(std::uint64_t threshold) const noexcept;

 private:
  // The placement kernel commits balls through raw pointers into balls_ and
  // maintains max_load_/argmax_/total_balls_ itself (same invariants as
  // add_ball, minus the per-ball abstraction cost).
  friend class PlacementKernel;

  std::vector<std::uint64_t> capacities_;
  std::vector<std::uint64_t> balls_;
  std::uint64_t total_capacity_ = 0;
  std::uint64_t total_balls_ = 0;
  std::uint64_t max_capacity_ = 0;
  Load max_load_{0, 1};
  std::size_t argmax_ = 0;
};

}  // namespace nubb
