#pragma once

/// \file bin_array.hpp
/// The system state: `n` bins with positive integer capacities and the
/// number of balls currently allocated to each.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/load.hpp"
#include "util/memory.hpp"

namespace nubb {

/// One bin's hot state, interleaved so a random candidate probe touches a
/// single cache line instead of two parallel uint64 streams. `num` is the
/// load numerator: the ball count in a BinArray, the accumulated integer
/// weight in a WeightedBinArray. The placement kernel's decide and commit
/// stages operate directly on these slots.
struct BinSlot {
  std::uint64_t num = 0;
  std::uint64_t cap = 1;
};

namespace detail {

/// FNV-1a 64 offset basis — the starting hash of every slot fingerprint.
inline constexpr std::uint64_t kFingerprintBasis = 0xCBF29CE484222325ULL;

/// Fold `n` interleaved slots into a running FNV-1a 64 hash `h` (numerator
/// bytes, then capacity bytes, little-endian within each u64). Because
/// FNV-1a is a plain byte fold, folding consecutive slot ranges in order is
/// identical to hashing their concatenation — which is what lets a sharded
/// service compose per-shard sub-arrays into the fingerprint one unsharded
/// array would report (core/bin_range.hpp).
inline std::uint64_t slots_fingerprint_fold(std::uint64_t h, const BinSlot* slots,
                                            std::size_t n) noexcept {
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    mix(slots[i].num);
    mix(slots[i].cap);
  }
  return h;
}

/// FNV-1a 64 over interleaved slots in bin order — shared by the state
/// fingerprints of BinArray and WeightedBinArray, and by anything that
/// needs to recompute them from a flat snapshot.
inline std::uint64_t slots_fingerprint(const BinSlot* slots, std::size_t n) noexcept {
  return slots_fingerprint_fold(kFingerprintBasis, slots, n);
}

}  // namespace detail

/// Bins with integer capacities (paper Section 2). Stores per-bin state as
/// interleaved (count, capacity) slots — 16 bytes per bin, the *only*
/// per-bin state this class keeps — on an AlignedBuffer that is
/// huge-page-backed when the MemoryConfig asks for it; maintains the total
/// capacity C and total ball count, and tracks the running maximum load
/// online (loads only ever grow, so the maximum is monotone and can be
/// maintained in O(1) per allocation).
///
/// Flat per-bin views (`ball_counts()`, `capacities()`) are materialised on
/// demand from the slots; nothing retains a second per-bin array, so at
/// millions of bins the resident hot state is exactly n * 16 bytes.
class BinArray {
 public:
  /// \pre capacities non-empty; every capacity >= 1; the capacity sum must
  ///      not wrap uint64 (checked — a wrapped total would silently corrupt
  ///      every average-load and fast64-horizon computation downstream).
  explicit BinArray(const std::vector<std::uint64_t>& capacities,
                    const MemoryConfig& mem = {});

  std::size_t size() const noexcept { return slots_.size(); }

  std::uint64_t capacity(std::size_t i) const noexcept { return slots_[i].cap; }
  std::uint64_t balls(std::size_t i) const noexcept { return slots_[i].num; }

  /// Total capacity C = sum of capacities.
  std::uint64_t total_capacity() const noexcept { return total_capacity_; }

  /// Largest single bin capacity (cached; O(1)). The placement kernel uses
  /// it to decide whether 64-bit load comparisons can overflow.
  std::uint64_t max_capacity() const noexcept { return max_capacity_; }

  /// Total number of balls currently allocated.
  std::uint64_t total_balls() const noexcept { return total_balls_; }

  /// Exact load of bin i.
  Load load(std::size_t i) const noexcept { return Load{slots_[i].num, slots_[i].cap}; }

  /// Floating-point load of bin i (reporting only).
  double load_value(std::size_t i) const noexcept { return load(i).value(); }

  /// Average load = total_balls / total_capacity (the optimum when m = C
  /// is 1 by construction).
  double average_load() const noexcept {
    return static_cast<double>(total_balls_) / static_cast<double>(total_capacity_);
  }

  /// Allocate one ball to bin i; O(1), updates the running maximum.
  void add_ball(std::size_t i) noexcept {
    BinSlot& s = slots_[i];
    ++s.num;
    ++total_balls_;
    const Load l{s.num, s.cap};
    if (max_load_ < l) {
      max_load_ = l;
      argmax_ = i;
    }
  }

  /// Running maximum load (exact). {0, 1} when no ball has been allocated.
  Load max_load() const noexcept { return max_load_; }

  /// Index of a bin attaining the maximum load (the most recent one to reach
  /// it). Meaningful only after at least one ball.
  std::size_t argmax_bin() const noexcept { return argmax_; }

  /// Remove one ball from bin i. O(1) unless bin i currently attains the
  /// maximum load, in which case the maximum is recomputed by a full scan.
  /// \pre balls(i) >= 1.
  void remove_ball(std::size_t i);

  /// Append new empty bins (dynamic growth, Section 4.3). Existing balls
  /// and the running maximum are unaffected; the total capacity grows
  /// (overflow-checked like construction, with no mutation on failure).
  /// \pre every new capacity >= 1.
  void append_bins(const std::vector<std::uint64_t>& new_capacities);

  /// Remove all balls, keep capacities.
  void clear() noexcept;

  /// Raw interleaved slots (hot state). Stable across clear()/remove_ball();
  /// invalidated by append_bins().
  const BinSlot* slot_data() const noexcept { return slots_.data(); }

  /// All capacities as a flat vector, materialised on demand from the slots
  /// (O(n) per call; nothing is retained). Samplers and reports consume it
  /// once per game, so a cold copy would only double the per-bin footprint.
  std::vector<std::uint64_t> capacities() const;

  /// Per-bin ball counts as a flat vector, materialised on demand from the
  /// slots (O(n) per call; nothing is retained — the retained cache plus
  /// its per-ball dirty-bit store cost more than the occasional
  /// materialisation it saved).
  std::vector<std::uint64_t> ball_counts() const;

  /// All bin loads as doubles (reporting).
  std::vector<double> load_values() const;

  /// Sum of capacities of bins with capacity >= threshold (the paper's
  /// C_b / C_s split for "big" vs "small" bins).
  std::uint64_t capacity_at_least(std::uint64_t threshold) const noexcept;

  /// Whether the slot storage was huge-page-advised (telemetry; see
  /// AlignedBuffer::huge_page_advised).
  bool huge_page_advised() const noexcept { return slots_.huge_page_advised(); }

  /// FNV-1a 64 over the interleaved (count, capacity) slots in bin order —
  /// a state fingerprint two processes can compare without shipping the
  /// full per-bin vectors. Same hash family as `caps_fingerprint`, but over
  /// counts as well, so it distinguishes allocations, not just shapes.
  std::uint64_t fingerprint() const noexcept;

 private:
  // The placement kernel commits balls through raw pointers into slots_ and
  // maintains max_load_/argmax_/total_balls_ itself (same invariants as
  // add_ball, minus the per-ball abstraction cost).
  friend class PlacementKernel;

  AlignedBuffer<BinSlot> slots_;
  std::uint64_t total_capacity_ = 0;
  std::uint64_t total_balls_ = 0;
  std::uint64_t max_capacity_ = 0;
  Load max_load_{0, 1};
  std::size_t argmax_ = 0;
};

}  // namespace nubb
