#include "core/load_vector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nubb {

std::vector<double> normalized_load_vector(const BinArray& bins) {
  std::vector<double> loads = bins.load_values();
  std::sort(loads.begin(), loads.end(), std::greater<>());
  return loads;
}

std::vector<Slot> slot_load_vector(const BinArray& bins) {
  std::vector<Slot> slots;
  slots.reserve(bins.total_capacity());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const std::uint64_t c = bins.capacity(i);
    const std::uint64_t l = bins.balls(i);
    const std::uint64_t base = l / c;
    const std::uint64_t extra = l % c;  // first `extra` slots hold base+1
    for (std::uint64_t s = 0; s < c; ++s) {
      slots.push_back(Slot{s < extra ? base + 1 : base, static_cast<std::uint32_t>(i)});
    }
  }
  return slots;
}

std::vector<std::uint64_t> normalized_slot_load_vector(const BinArray& bins) {
  std::vector<Slot> slots = slot_load_vector(bins);
  // Sort by slot ball count descending; equal slot counts break ties by the
  // owning bin's exact load, higher bin load first (paper Section 2).
  std::stable_sort(slots.begin(), slots.end(), [&bins](const Slot& a, const Slot& b) {
    if (a.balls != b.balls) return a.balls > b.balls;
    return bins.load(b.bin) < bins.load(a.bin);
  });
  std::vector<std::uint64_t> counts(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) counts[i] = slots[i].balls;
  return counts;
}

namespace {

template <typename T>
bool majorizes_impl(std::vector<T> u, std::vector<T> v) {
  NUBB_REQUIRE_MSG(u.size() == v.size(), "majorisation requires equal-length vectors");
  std::sort(u.begin(), u.end(), std::greater<>());
  std::sort(v.begin(), v.end(), std::greater<>());
  long double prefix_u = 0;
  long double prefix_v = 0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    prefix_u += static_cast<long double>(u[k]);
    prefix_v += static_cast<long double>(v[k]);
    if (prefix_u < prefix_v) return false;
  }
  return true;
}

}  // namespace

bool majorizes(std::vector<std::uint64_t> u, std::vector<std::uint64_t> v) {
  return majorizes_impl(std::move(u), std::move(v));
}

bool majorizes(std::vector<double> u, std::vector<double> v) {
  return majorizes_impl(std::move(u), std::move(v));
}

}  // namespace nubb
