#pragma once

/// \file sampler.hpp
/// O(1) bin choice. Wraps either a uniform fast path (no table needed) or a
/// Vose alias table built from a SelectionPolicy's weights.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/probability.hpp"
#include "util/alias_table.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace nubb {

class BinArray;

/// Immutable sampler over bin indices {0, ..., n-1}.
class BinSampler {
 public:
  /// Uniform over n bins (alias-table-free fast path).
  static BinSampler uniform(std::size_t n);

  /// From explicit weights. `mem` places the alias table's hot slot arrays
  /// (see AliasTable); it cannot change what is sampled.
  static BinSampler from_weights(const std::vector<double>& weights,
                                 const MemoryConfig& mem = {});

  /// From a policy applied to a capacity vector. `mem` as in from_weights.
  static BinSampler from_policy(const SelectionPolicy& policy,
                                const std::vector<std::uint64_t>& capacities,
                                const MemoryConfig& mem = {});

  /// Draw one bin index.
  std::size_t sample(Xoshiro256StarStar& rng) const noexcept {
    if (!table_) return static_cast<std::size_t>(rng.bounded(n_));
    return table_->sample(rng);
  }

  std::size_t size() const noexcept { return n_; }

  /// Number of bins with strictly positive probability. Distinct-choice
  /// sampling can produce at most this many different bins, no matter how
  /// many rejections it is willing to pay.
  std::size_t support_size() const noexcept {
    return table_ ? table_->support_size() : n_;
  }

  /// Underlying alias table, or null for the uniform fast path. The
  /// placement kernel caches this raw pointer so its inner loop skips the
  /// shared_ptr indirection; the table is immutable and owned for the
  /// sampler's lifetime.
  const AliasTable* alias_table() const noexcept { return table_.get(); }

  /// Probability assigned to bin i.
  double probability(std::size_t i) const;

 private:
  BinSampler(std::size_t n, std::shared_ptr<const AliasTable> table)
      : n_(n), table_(std::move(table)) {}

  std::size_t n_;
  std::shared_ptr<const AliasTable> table_;  // null => uniform
};

}  // namespace nubb
