#pragma once

/// \file growth.hpp
/// The dynamic-scaling scenario of Section 4.3: a storage system grows in
/// batches of disks; each new generation is bigger than the previous one,
/// old disks stay in the system. `growth_capacities` materialises the
/// capacity vector of such a system at a given size.

#include <cstdint>
#include <vector>

namespace nubb {

/// Generation-over-generation capacity growth law.
struct GrowthModel {
  enum class Kind {
    kConstant,     ///< baseline: every batch has the initial capacity
    kLinear,       ///< batch i capacity = initial + a * i
    kExponential,  ///< batch i capacity = initial * b^i (rounded, >= 1)
  };

  Kind kind = Kind::kConstant;
  double parameter = 0.0;                 ///< a (linear) or b (exponential)
  std::uint64_t initial_capacity = 2;     ///< capacity of the first batch
  /// Per-disk capacity ceiling; 0 disables. The paper's exponential model at
  /// b = 1.4 reaches per-disk capacities ~3*10^7 which makes m = C games
  /// infeasible and is far past the point where the measured max load has
  /// converged to 1; benches clamp (documented in EXPERIMENTS.md).
  std::uint64_t capacity_limit = 0;

  static GrowthModel constant(std::uint64_t initial = 2);
  static GrowthModel linear(double a, std::uint64_t initial = 2);
  static GrowthModel exponential(double b, std::uint64_t initial = 2);

  /// Capacity of disks in batch `index` (0-based).
  std::uint64_t batch_capacity(std::uint64_t index) const;
};

/// Capacity vector of a system with `total_disks` disks that grew in batches
/// of `batch_size` (the first batch may be smaller if total_disks is not a
/// multiple — the paper starts at 2 disks and adds 20 per step, so batch 0
/// has 2 disks and subsequent batches 20).
///
/// Concretely: disks [0, first_batch) are batch 0; after that every
/// `batch_size` disks form the next batch.
/// \pre total_disks >= 1, batch_size >= 1, first_batch >= 1.
std::vector<std::uint64_t> growth_capacities(std::size_t total_disks, std::size_t first_batch,
                                             std::size_t batch_size, const GrowthModel& model);

}  // namespace nubb
