#include "core/reallocation.hpp"

#include "core/metrics.hpp"
#include "core/placement_kernel.hpp"
#include "core/sampler.hpp"
#include "util/assert.hpp"

namespace nubb {

RebalanceResult rebalance(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                          double target_max_load, std::uint64_t max_moves,
                          Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(target_max_load > 0.0, "rebalance target must be positive");
  NUBB_REQUIRE_MSG(sampler.size() == bins.size(), "sampler and bin array size mismatch");

  RebalanceResult result;
  std::uint32_t consecutive_failures = 0;

  // One kernel for the whole rebalance: every move removes a ball before
  // placing one, so the net ball count never exceeds the current total and
  // a planned horizon of one ball is exact.
  PlacementKernel kernel(bins, sampler, cfg, /*planned_balls=*/1);

  while (result.moves < max_moves && bins.max_load().value() > target_max_load) {
    const std::size_t source = bins.argmax_bin();
    bins.remove_ball(source);
    const std::size_t dest = kernel.place_one(rng);
    if (dest == source) {
      // The move was a no-op; the d draws favoured the source bin again.
      if (++consecutive_failures >= 3) {
        ++result.failed_moves;
        break;
      }
      ++result.failed_moves;
      continue;
    }
    consecutive_failures = 0;
    ++result.moves;
  }

  result.final_max_load = bins.max_load().value();
  result.reached_target = result.final_max_load <= target_max_load;
  return result;
}

std::vector<IncrementalGrowthStep> simulate_incremental_growth(
    const GrowthModel& model, std::size_t total_disks, std::size_t first_batch,
    std::size_t batch_size, std::size_t disks_per_step, const SelectionPolicy& policy,
    const GameConfig& cfg, double rebalance_target_gap, std::uint64_t max_moves_per_step,
    Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(disks_per_step >= 1, "need at least one disk per step");
  NUBB_REQUIRE_MSG(total_disks >= first_batch, "total disks below the first batch size");

  std::vector<IncrementalGrowthStep> steps;

  // Start with the initial batch, filled to m = C.
  std::vector<std::uint64_t> caps = growth_capacities(first_batch, first_batch, batch_size,
                                                      model);
  BinArray bins(caps);
  {
    const BinSampler sampler = BinSampler::from_policy(policy, bins.capacities());
    GameConfig fill = cfg;
    fill.balls = bins.total_capacity();
    play_game(bins, sampler, fill, rng);
  }

  for (std::size_t disks = first_batch; disks <= total_disks; disks += disks_per_step) {
    if (disks > first_batch) {
      // Append the disks added since the previous step and fill only the
      // added capacity (old balls stay put).
      const auto grown = growth_capacities(disks, first_batch, batch_size, model);
      const std::vector<std::uint64_t> added(grown.begin() + static_cast<std::ptrdiff_t>(
                                                  bins.size()),
                                             grown.end());
      bins.append_bins(added);
      const BinSampler sampler = BinSampler::from_policy(policy, bins.capacities());
      GameConfig fill = cfg;
      fill.balls = bins.total_capacity() - bins.total_balls();
      if (fill.balls > 0) play_game(bins, sampler, fill, rng);
    }

    IncrementalGrowthStep step;
    step.disks = bins.size();
    step.total_capacity = bins.total_capacity();
    step.incremental_max_load = bins.max_load().value();

    if (rebalance_target_gap >= 0.0) {
      const BinSampler sampler = BinSampler::from_policy(policy, bins.capacities());
      const double target = bins.average_load() + rebalance_target_gap;
      const RebalanceResult r =
          rebalance(bins, sampler, cfg, target, max_moves_per_step, rng);
      step.rebalanced_max_load = r.final_max_load;
      step.moves = r.moves;
    } else {
      step.rebalanced_max_load = step.incremental_max_load;
    }
    steps.push_back(step);
  }
  return steps;
}

}  // namespace nubb
