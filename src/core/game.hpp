#pragma once

/// \file game.hpp
/// One complete balls-into-bins game: throw m balls, each placed by
/// Algorithm 1 among d bins drawn from a BinSampler.

#include <cstdint>
#include <functional>

#include "core/bin_array.hpp"
#include "core/protocol.hpp"
#include "core/sampler.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nubb {

/// Parameters of a single game.
struct GameConfig {
  /// Number of balls m. 0 means "m = total capacity C" (the paper's default
  /// setting where the optimal maximum load is exactly 1).
  std::uint64_t balls = 0;

  /// Number of random choices d per ball (d >= 1; the paper analyses d >= 2).
  std::uint32_t choices = 2;

  /// Tie-break rule; Algorithm 1 uses kPreferLargerCapacity.
  TieBreak tie_break = TieBreak::kPreferLargerCapacity;

  /// If true the d candidates are forced distinct (sampling repeats until d
  /// different bins were seen). The paper's analysis uses independent
  /// choices (duplicates possible); distinct mode exists for ablations.
  bool distinct_choices = false;

  /// Arrival batch size. 1 is the paper's sequential process; > 1 means
  /// balls arrive in rounds of `batch` whose decisions observe the loads as
  /// of the round start (stale information, see batched.hpp). Consumed by
  /// the replication engine (`GameFixture::run_one`) and
  /// `play_batched_game`; the sequential entry points (`place_one_ball`,
  /// `play_game`, `play_game_heights`) model the batch = 1 process and
  /// ignore this field.
  std::uint64_t batch = 1;

  /// RNG draw-order stream (see RngStream). kV1 is the locked default every
  /// golden value is pinned to; kV2 is the batch-drawn fast path, selected
  /// with `nubb_run --stream v2`. The realised process distribution is the
  /// same for both; fixed-seed outcomes are not.
  RngStream stream = RngStream::kV1;

  /// Storage knobs for the bin state built for this game: huge-page backing
  /// and the cross-ball candidate prefetch. Never observable in results —
  /// fixed-seed outcomes are bit-identical across every setting (the RNG
  /// draw order does not depend on memory layout); only throughput moves.
  MemoryConfig memory;

  /// Resolve-stage SIMD selection for bulk stream-v2 runs (`nubb_run --simd`,
  /// env NUBB_SIMD under kAuto; see util/simd.hpp). Never observable in
  /// results: the AVX2 kernels consume the identical draw stream and are
  /// bit-identical to the scalar resolve on every fixed seed — like `memory`,
  /// only throughput moves. Ignored (scalar) under stream v1.
  SimdMode simd = SimdMode::kAuto;
};

/// Snapshot handed to checkpoint callbacks during a game.
struct GameCheckpoint {
  std::uint64_t balls_thrown = 0;
  Load max_load{0, 1};
  double average_load = 0.0;
};

using CheckpointFn = std::function<void(const GameCheckpoint&, const BinArray&)>;

/// Final outcome of a game (the BinArray itself holds the full allocation).
struct GameResult {
  Load max_load{0, 1};
  std::size_t argmax_bin = 0;
  std::uint64_t balls_thrown = 0;

  double max_load_value() const noexcept { return max_load.value(); }
};

/// Place one ball according to `cfg` and return its destination bin.
std::size_t place_one_ball(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                           Xoshiro256StarStar& rng);

/// Play a full game on `bins` (which must be empty or mid-game; balls are
/// *added* to the current state). If `checkpoint_interval > 0`,
/// `on_checkpoint` is invoked after every `checkpoint_interval` balls and
/// once more after the final ball if it does not fall on the interval.
GameResult play_game(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                     Xoshiro256StarStar& rng, std::uint64_t checkpoint_interval = 0,
                     const CheckpointFn& on_checkpoint = {});

/// Play a game and record every ball's *height* — the load of its
/// destination bin immediately after the allocation (paper Section 2).
/// Returns one height per ball, in throw order. The maximum over the
/// returned heights equals the final maximum load (the running maximum only
/// moves at an allocation, to exactly that ball's height).
std::vector<double> play_game_heights(BinArray& bins, const BinSampler& sampler,
                                      const GameConfig& cfg, Xoshiro256StarStar& rng);

}  // namespace nubb
