#include "core/batched.hpp"

#include <algorithm>
#include <vector>

#include "core/placement_kernel.hpp"
#include "util/assert.hpp"

namespace nubb {

GameResult play_batched_game(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                             std::uint64_t batch_size, Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(batch_size >= 1, "batch size must be positive");

  const std::uint64_t m = cfg.balls == 0 ? bins.total_capacity() : cfg.balls;
  PlacementKernel kernel(bins, sampler, cfg, m);

  // Stale view: ball counts frozen at the last batch boundary (materialised
  // from the interleaved slots by ball_counts()). The kernel decides on this
  // snapshot and commits to the live bins, so allocations stay invisible to
  // decisions until the next boundary while ball conservation holds
  // throughout.
  std::vector<std::uint64_t> snapshot = bins.ball_counts();

  std::uint64_t thrown = 0;
  while (thrown < m) {
    const std::uint64_t batch = std::min(batch_size, m - thrown);
    for (std::uint64_t b = 0; b < batch; ++b) {
      kernel.place_one_stale(snapshot.data(), rng);
    }
    thrown += batch;
    snapshot = bins.ball_counts();  // loads become visible at the boundary
  }

  return GameResult{bins.max_load(), bins.argmax_bin(), m};
}

}  // namespace nubb
