#include "core/batched.hpp"

#include <vector>

#include "util/assert.hpp"

namespace nubb {

GameResult play_batched_game(BinArray& bins, const BinSampler& sampler, const GameConfig& cfg,
                             std::uint64_t batch_size, Xoshiro256StarStar& rng) {
  NUBB_REQUIRE_MSG(batch_size >= 1, "batch size must be positive");
  NUBB_REQUIRE_MSG(cfg.choices >= 1, "need at least one choice per ball");
  NUBB_REQUIRE_MSG(sampler.size() == bins.size(), "sampler and bin array size mismatch");
  constexpr std::uint32_t kMaxChoices = 64;
  NUBB_REQUIRE_MSG(cfg.choices <= kMaxChoices, "more than 64 choices per ball");

  const std::uint64_t m = cfg.balls == 0 ? bins.total_capacity() : cfg.balls;

  // Stale view: ball counts frozen at the last batch boundary.
  std::vector<std::uint64_t> snapshot = bins.ball_counts();

  std::uint64_t thrown = 0;
  while (thrown < m) {
    const std::uint64_t batch = std::min(batch_size, m - thrown);
    for (std::uint64_t b = 0; b < batch; ++b) {
      // Draw candidates. (Zero-initialised: cfg.choices >= 1 guarantees the
      // used entries are overwritten, but the optimiser cannot prove it.)
      std::size_t choices[kMaxChoices] = {};
      for (std::uint32_t k = 0; k < cfg.choices; ++k) choices[k] = sampler.sample(rng);

      // Decide on the *stale* loads.
      std::size_t best[kMaxChoices];
      best[0] = choices[0];
      std::size_t best_count = 0;
      Load best_load{0, 1};
      for (std::uint32_t k = 0; k < cfg.choices; ++k) {
        const std::size_t candidate = choices[k];
        const Load post{snapshot[candidate] + 1, bins.capacity(candidate)};
        if (best_count == 0 || post < best_load) {
          best_load = post;
          best[0] = candidate;
          best_count = 1;
        } else if (post == best_load) {
          bool duplicate = false;
          for (std::size_t i = 0; i < best_count; ++i) {
            if (best[i] == candidate) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) best[best_count++] = candidate;
        }
      }

      std::size_t dest = best[0];
      if (best_count > 1) {
        switch (cfg.tie_break) {
          case TieBreak::kFirstChoice:
            dest = best[0];
            break;
          case TieBreak::kUniform:
            dest = best[rng.bounded(best_count)];
            break;
          case TieBreak::kPreferLargerCapacity: {
            std::uint64_t cmax = 0;
            for (std::size_t i = 0; i < best_count; ++i) {
              cmax = std::max(cmax, bins.capacity(best[i]));
            }
            std::size_t filtered = 0;
            for (std::size_t i = 0; i < best_count; ++i) {
              if (bins.capacity(best[i]) == cmax) best[filtered++] = best[i];
            }
            dest = filtered == 1 ? best[0] : best[rng.bounded(filtered)];
            break;
          }
        }
      }
      bins.add_ball(dest);
    }
    thrown += batch;
    snapshot = bins.ball_counts();  // loads become visible at the boundary
  }

  return GameResult{bins.max_load(), bins.argmax_bin(), m};
}

}  // namespace nubb
