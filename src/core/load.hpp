#pragma once

/// \file load.hpp
/// Exact rational bin load.
///
/// The paper defines the load of bin `i` holding `m_i` balls as
/// `l_i = m_i / c_i`. Algorithm 1's decisions ("lowest load after
/// allocating", "ties") must be exact: capacity tie-breaking only fires on
/// *exact* load ties, and with integer capacities those ties are frequent
/// (e.g. 4 balls in a 2-bin vs 2 balls in a 1-bin). We therefore compare
/// loads as rationals by 128-bit cross multiplication and only convert to
/// double for reporting.

#include <compare>
#include <cstdint>

#include "util/int128.hpp"

namespace nubb {

/// A bin load as the exact rational `balls / capacity`.
struct Load {
  std::uint64_t balls = 0;
  std::uint64_t capacity = 1;  ///< strictly positive

  /// Floating-point value for reporting (not for decisions).
  constexpr double value() const noexcept {
    return static_cast<double>(balls) / static_cast<double>(capacity);
  }

  /// Exact comparison of balls_a/cap_a vs balls_b/cap_b.
  friend constexpr std::strong_ordering operator<=>(const Load& a, const Load& b) noexcept {
    const auto lhs = static_cast<uint128>(a.balls) * b.capacity;
    const auto rhs = static_cast<uint128>(b.balls) * a.capacity;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// Exact equality (equal rational value, e.g. 2/1 == 4/2).
  friend constexpr bool operator==(const Load& a, const Load& b) noexcept {
    return (a <=> b) == std::strong_ordering::equal;
  }

  /// The load this bin would have after receiving one more ball.
  constexpr Load after_one_more() const noexcept { return Load{balls + 1, capacity}; }
};

}  // namespace nubb
