#include "core/growth.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nubb {

GrowthModel GrowthModel::constant(std::uint64_t initial) {
  GrowthModel m;
  m.kind = Kind::kConstant;
  m.initial_capacity = initial;
  return m;
}

GrowthModel GrowthModel::linear(double a, std::uint64_t initial) {
  NUBB_REQUIRE_MSG(a >= 0.0, "linear growth offset must be non-negative");
  GrowthModel m;
  m.kind = Kind::kLinear;
  m.parameter = a;
  m.initial_capacity = initial;
  return m;
}

GrowthModel GrowthModel::exponential(double b, std::uint64_t initial) {
  NUBB_REQUIRE_MSG(b >= 1.0, "exponential growth factor must be >= 1");
  GrowthModel m;
  m.kind = Kind::kExponential;
  m.parameter = b;
  m.initial_capacity = initial;
  return m;
}

std::uint64_t GrowthModel::batch_capacity(std::uint64_t index) const {
  double c = static_cast<double>(initial_capacity);
  switch (kind) {
    case Kind::kConstant:
      break;
    case Kind::kLinear:
      c += parameter * static_cast<double>(index);
      break;
    case Kind::kExponential:
      c *= std::pow(parameter, static_cast<double>(index));
      break;
  }
  auto capacity = static_cast<std::uint64_t>(std::llround(c));
  if (capacity < 1) capacity = 1;
  if (capacity_limit > 0 && capacity > capacity_limit) capacity = capacity_limit;
  return capacity;
}

std::vector<std::uint64_t> growth_capacities(std::size_t total_disks, std::size_t first_batch,
                                             std::size_t batch_size, const GrowthModel& model) {
  NUBB_REQUIRE_MSG(total_disks >= 1, "need at least one disk");
  NUBB_REQUIRE_MSG(first_batch >= 1 && batch_size >= 1, "batch sizes must be positive");

  std::vector<std::uint64_t> caps;
  caps.reserve(total_disks);
  std::uint64_t batch_index = 0;
  std::size_t in_batch = 0;
  std::size_t current_batch_size = first_batch;
  for (std::size_t disk = 0; disk < total_disks; ++disk) {
    caps.push_back(model.batch_capacity(batch_index));
    if (++in_batch == current_batch_size) {
      in_batch = 0;
      ++batch_index;
      current_batch_size = batch_size;
    }
  }
  return caps;
}

}  // namespace nubb
