#pragma once

/// \file scenario.hpp
/// Named experiment scenarios: a string-keyed registry of declarative
/// measurement recipes over the replication engine of experiment.hpp.
///
/// A `Scenario` packages one experiment family end-to-end — a
/// per-replication collector body, the shard-state (de)serialization, and
/// the report — behind a uniform interface, so drivers like `nubb_run`
/// dispatch by name (`--experiment`, `--list`) instead of hard-wiring one
/// code path per measurement. Because every scenario runs through
/// `replicate_shard` / `merge_shards`, all of them shard across processes
/// and merge bit-identically for free, including batched arrivals
/// (`GameConfig::batch > 1`).
///
/// Adding a scenario is ~30 lines: a body feeding a collector (compose
/// `KeyedCollector` / `MultiCollector` as needed), a report, and a
/// `registry.add(...)` call in `ScenarioRegistry::global()`. The registered
/// names double as the `nubb.shard.v2` state-file experiment tag, so shard
/// files from different scenarios never merge into each other.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace nubb {

/// Everything one scenario run needs, parsed once by the driver.
struct ScenarioSpec {
  std::vector<std::uint64_t> capacities;
  SelectionPolicy policy = SelectionPolicy::proportional_to_capacity();
  GameConfig game;        ///< balls = 0 means m = C (the GameConfig convention;
                          ///< scenarios needing an explicit count resolve it),
                          ///< batch included
  ExperimentConfig exp;   ///< replications / seed / chunks / shard coords
  bool profile = false;   ///< max-load: also collect the mean sorted profile
  bool classes = false;   ///< max-load: also collect class-of-max fractions
  std::uint64_t checkpoint_interval = 0;  ///< gap-trace (resolved, >= 1)
};

/// Config metadata describing one experiment, independent of whether the
/// capacity vector is in memory (fresh run) or only its metadata survived
/// (merge of state files). Travels in the `nubb.shard.v2` config block;
/// `--merge` refuses shard sets whose metas differ.
struct RunMeta {
  std::string experiment;  ///< registry key
  std::uint64_t n = 0;
  std::uint64_t total_capacity = 0;
  std::uint64_t caps_hash = 0;
  std::string policy;
  std::uint64_t choices = 0;
  std::string tie_break;
  std::uint64_t balls = 0;
  std::uint64_t batch = 1;
  std::string stream = "v1";  ///< RNG draw-order stream ("v1" | "v2"); part of
                              ///< every config fingerprint — the two streams'
                              ///< fixed-seed results differ, so shard sets
                              ///< never mix streams. Absent in state files
                              ///< written before stream v2 existed, read back
                              ///< as "v1" (those files *are* v1 streams).
  std::uint64_t replications = 0;
  std::uint64_t seed = 0;
  std::uint64_t chunks = 0;
  std::uint64_t checkpoint = 0;  ///< gap-trace interval (0 elsewhere)
  bool profile = false;
  bool classes = false;
  std::string huge_pages = "auto";  ///< --huge-pages setting ("auto" | "on" |
                                    ///< "off"). Recorded for provenance only:
                                    ///< memory layout never affects results,
                                    ///< so merge compatibility goes through
                                    ///< merge_key(), which resets it — shard
                                    ///< sets may mix settings freely. Absent
                                    ///< in older state files, read as "auto".
  std::string simd = "scalar";  ///< Resolved resolve-stage implementation
                                ///< ("scalar" | "avx2"). Provenance only,
                                ///< like huge_pages: scalar and AVX2 runs
                                ///< are bit-identical, so merge_key() resets
                                ///< it and shard sets may mix freely. Absent
                                ///< in older state files, read as "scalar".

  void to_json(JsonWriter& w) const;
  static RunMeta from_json(const JsonValue& v);
  bool operator==(const RunMeta& other) const = default;

  /// The fields that decide whether two shards belong to the same
  /// experiment: this meta with the result-irrelevant provenance fields
  /// (huge_pages, simd) reset to their defaults. Two shard files are
  /// mergeable iff their merge_key()s compare equal.
  RunMeta merge_key() const {
    RunMeta key = *this;
    key.huge_pages = "auto";
    key.simd = "scalar";
    return key;
  }
};

/// FNV-1a over the capacity vector: a cheap fingerprint so merges can
/// refuse shard files produced from different bin configurations.
std::uint64_t caps_fingerprint(const std::vector<std::uint64_t>& caps);

/// Where a scenario reports its merged result: human tables on `out`, and
/// the scenario's result block(s) of a JSON report when `json` is set
/// (the writer is positioned inside the report object; write complete
/// key/value blocks only).
struct ReportContext {
  const RunMeta& meta;
  std::ostream& out;
  JsonWriter* json = nullptr;
};

/// One named experiment: run a shard, validate a shard state, merge a
/// complete state set and report. Implementations live behind the
/// registry; drivers never name concrete scenario types.
class Scenario {
 public:
  Scenario(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}
  virtual ~Scenario() = default;

  const std::string& name() const noexcept { return name_; }
  const std::string& description() const noexcept { return description_; }

  /// Execute the shard of the replication chunks that
  /// `spec.exp.shard_index / shard_count` owns and write the collector
  /// state `merge_and_report` consumes (the "state" value of a
  /// `nubb.shard.v2` file). Shard 0-of-1 is a full run.
  virtual void run_shard(const ScenarioSpec& spec, JsonWriter& w) const = 0;

  /// Parse-validate one shard's collector state; throws (JsonError or
  /// std::runtime_error) on malformed input. Backs `--check-state` resume
  /// probes: a state that passes will load cleanly at merge time.
  virtual void check_state(const JsonValue& state) const = 0;

  /// Merge a complete shard set's collector states (file order is
  /// irrelevant — the fold is by global chunk index) and report the result.
  virtual void merge_and_report(const std::vector<JsonValue>& states,
                                const ReportContext& ctx) const = 0;

  /// Full unsharded run: shard 0-of-1 plus the merge, folded in memory —
  /// the same typed path the sharded run takes, minus the (bit-exact,
  /// test-locked) JSON transport, so large runs skip the serialization
  /// round trip. \pre spec is unsharded.
  virtual void run_and_report(const ScenarioSpec& spec, const ReportContext& ctx) const = 0;

  /// Zero the RunMeta fields this scenario does not consume, so shard sets
  /// that differ only in irrelevant driver flags (e.g. --checkpoint on a
  /// max-load run) still merge and resume. The base version zeroes every
  /// scenario-specific field; scenarios keep the ones they read.
  virtual void normalize_meta(RunMeta& meta) const;

 private:
  std::string name_;
  std::string description_;
};

/// String-keyed scenario registry.
class ScenarioRegistry {
 public:
  /// \throws std::runtime_error on a duplicate name.
  void add(std::unique_ptr<Scenario> scenario);

  /// Null when unknown.
  const Scenario* find(const std::string& name) const noexcept;

  /// \throws std::runtime_error listing the known names when unknown.
  const Scenario& require(const std::string& name) const;

  /// All scenarios, name-sorted.
  std::vector<const Scenario*> list() const;

  /// The process-wide registry, pre-seeded with the built-in scenarios.
  static ScenarioRegistry& global();

 private:
  std::map<std::string, std::unique_ptr<Scenario>> by_name_;
};

// ---------------------------------------------------------------------------
// Typed cores of the registry-only scenarios (the ones without a runner in
// experiment.hpp), exposed so tests can assert shard/merge bit-identity at
// the collector level.
// ---------------------------------------------------------------------------

/// Per-capacity-class max-load distribution: for every capacity class, the
/// statistics of that class's own maximum load (the paper's Figures 12/13
/// summarise the full class profiles; this is the head of each profile,
/// cheap enough to run at scale).
ExperimentShard<KeyedCollector<ScalarCollector>> class_max_load_shard(const ScenarioSpec& spec);
std::map<std::uint64_t, Summary> class_max_load_merge(
    const std::vector<ExperimentShard<KeyedCollector<ScalarCollector>>>& shards);

/// Hit-every-bin probability: fraction of replications in which every bin
/// received at least one ball (coupon-collector-style coverage; near zero
/// at m = C unless the array is tiny, a useful dial for capacity planning).
ExperimentShard<ScalarCollector> hit_every_bin_shard(const ScenarioSpec& spec);
Summary hit_every_bin_merge(const std::vector<ExperimentShard<ScalarCollector>>& shards);

}  // namespace nubb
