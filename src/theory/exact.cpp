#include "theory/exact.hpp"

#include <cmath>

#include "core/load.hpp"
#include "util/assert.hpp"
#include "util/math_utils.hpp"

namespace nubb {

namespace {

/// Enumeration context shared across the recursion.
struct Enumeration {
  const std::vector<std::uint64_t>& capacities;
  std::vector<double> probabilities;  // normalised selection probabilities
  std::uint32_t d;
  TieBreak tie_break;
  std::map<std::vector<std::uint64_t>, double> out;
};

/// Distinct candidates of one choice tuple that minimise the exact
/// post-allocation load, filtered by the tie-break policy. Returns the set
/// of possible destinations; under kUniform / kPreferLargerCapacity the
/// probability splits evenly among them, under kFirstChoice the first
/// candidate (in tuple order) wins outright.
std::vector<std::size_t> destinations(const Enumeration& ctx,
                                      const std::vector<std::uint64_t>& balls,
                                      const std::vector<std::size_t>& tuple) {
  std::vector<std::size_t> best;
  Load best_load{0, 1};
  for (const std::size_t candidate : tuple) {
    const Load post{balls[candidate] + 1, ctx.capacities[candidate]};
    if (best.empty() || post < best_load) {
      best_load = post;
      best.assign(1, candidate);
    } else if (post == best_load) {
      bool duplicate = false;
      for (const std::size_t b : best) {
        if (b == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) best.push_back(candidate);
    }
  }
  if (best.size() == 1) return best;

  switch (ctx.tie_break) {
    case TieBreak::kFirstChoice:
      return {best.front()};
    case TieBreak::kUniform:
      return best;
    case TieBreak::kPreferLargerCapacity: {
      std::uint64_t cmax = 0;
      for (const std::size_t b : best) cmax = std::max(cmax, ctx.capacities[b]);
      std::vector<std::size_t> filtered;
      for (const std::size_t b : best) {
        if (ctx.capacities[b] == cmax) filtered.push_back(b);
      }
      return filtered;
    }
  }
  return best;  // unreachable
}

/// Recurse over the remaining balls; `prob` is the probability mass of the
/// current partial history.
void recurse(Enumeration& ctx, std::vector<std::uint64_t>& balls, std::uint64_t remaining,
             double prob) {
  if (remaining == 0) {
    ctx.out[balls] += prob;
    return;
  }
  const std::size_t n = ctx.capacities.size();

  // Enumerate all n^d choice tuples via an odometer.
  std::vector<std::size_t> tuple(ctx.d, 0);
  for (;;) {
    double tuple_prob = prob;
    for (const std::size_t c : tuple) tuple_prob *= ctx.probabilities[c];

    if (tuple_prob > 0.0) {
      const auto dests = destinations(ctx, balls, tuple);
      const double share = tuple_prob / static_cast<double>(dests.size());
      for (const std::size_t dest : dests) {
        ++balls[dest];
        recurse(ctx, balls, remaining - 1, share);
        --balls[dest];
      }
    }

    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < ctx.d && ++tuple[pos] == n) {
      tuple[pos] = 0;
      ++pos;
    }
    if (pos == ctx.d) break;
  }
}

}  // namespace

std::map<std::vector<std::uint64_t>, double> exact_allocation_distribution(
    const std::vector<std::uint64_t>& capacities, const std::vector<double>& weights,
    std::uint32_t d, std::uint64_t m, TieBreak tie_break) {
  NUBB_REQUIRE_MSG(!capacities.empty(), "need at least one bin");
  NUBB_REQUIRE_MSG(capacities.size() == weights.size(), "weights/capacities size mismatch");
  NUBB_REQUIRE_MSG(d >= 1, "need at least one choice");

  const std::uint64_t tuples = saturating_pow(capacities.size(), d);
  NUBB_REQUIRE_MSG(tuples < 4096 && m <= 8 &&
                       saturating_pow(tuples, static_cast<std::uint32_t>(m)) < 100000000ULL,
                   "exact enumeration limited to tiny games (n^d and m too large)");

  double total = 0.0;
  for (const double w : weights) {
    NUBB_REQUIRE_MSG(w >= 0.0, "selection weights must be non-negative");
    total += w;
  }
  NUBB_REQUIRE_MSG(total > 0.0, "selection weights must have positive total");

  Enumeration ctx{capacities, {}, d, tie_break, {}};
  ctx.probabilities.reserve(weights.size());
  for (const double w : weights) ctx.probabilities.push_back(w / total);

  std::vector<std::uint64_t> balls(capacities.size(), 0);
  recurse(ctx, balls, m, 1.0);
  return ctx.out;
}

std::map<double, double> exact_max_load_distribution(
    const std::vector<std::uint64_t>& capacities, const std::vector<double>& weights,
    std::uint32_t d, std::uint64_t m, TieBreak tie_break) {
  const auto allocations = exact_allocation_distribution(capacities, weights, d, m, tie_break);
  std::map<double, double> out;
  for (const auto& [balls, prob] : allocations) {
    Load max{0, 1};
    for (std::size_t i = 0; i < balls.size(); ++i) {
      const Load l{balls[i], capacities[i]};
      if (max < l) max = l;
    }
    out[max.value()] += prob;
  }
  return out;
}

double exact_expected_max_load(const std::vector<std::uint64_t>& capacities,
                               const std::vector<double>& weights, std::uint32_t d,
                               std::uint64_t m, TieBreak tie_break) {
  double expectation = 0.0;
  for (const auto& [value, prob] : exact_max_load_distribution(capacities, weights, d, m,
                                                               tie_break)) {
    expectation += value * prob;
  }
  return expectation;
}

}  // namespace nubb
