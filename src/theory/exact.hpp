#pragma once

/// \file exact.hpp
/// Exact (exhaustive) analysis of tiny games.
///
/// For small n, d and m the full probability distribution of the final
/// allocation can be computed by enumerating every choice tuple and every
/// tie-break branch with its exact probability. This gives a ground-truth
/// oracle against which the Monte-Carlo simulator is validated: any bias in
/// candidate sampling, tie handling or the protocol itself shows up as a
/// statistically significant deviation from the exact distribution.
///
/// Complexity is O((n^d)^m * branching); intended for n <= 4, m <= 6.

#include <cstdint>
#include <map>
#include <vector>

#include "core/protocol.hpp"

namespace nubb {

/// Exact probability distribution over final per-bin ball-count vectors.
/// Keys are the ball-count vectors, values their probabilities (sum to 1).
///
/// `weights` are the (unnormalised) selection weights of the bins — pass
/// the capacities for the paper's proportional model.
/// \pre capacities/weights non-empty and matching; d >= 1; total weight > 0;
///      n^d * m small enough to enumerate (guarded at ~10^7 states).
std::map<std::vector<std::uint64_t>, double> exact_allocation_distribution(
    const std::vector<std::uint64_t>& capacities, const std::vector<double>& weights,
    std::uint32_t d, std::uint64_t m, TieBreak tie_break);

/// Exact distribution of the final *maximum load*, as value -> probability.
/// Max-load values are exact rationals rendered as doubles (tiny cases, so
/// no two distinct rationals collide).
std::map<double, double> exact_max_load_distribution(
    const std::vector<std::uint64_t>& capacities, const std::vector<double>& weights,
    std::uint32_t d, std::uint64_t m, TieBreak tie_break);

/// Exact expected maximum load (convenience over the distribution).
double exact_expected_max_load(const std::vector<std::uint64_t>& capacities,
                               const std::vector<double>& weights, std::uint32_t d,
                               std::uint64_t m, TieBreak tie_break);

}  // namespace nubb
