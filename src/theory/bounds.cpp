#include "theory/bounds.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math_utils.hpp"

namespace nubb::bounds {

double azar_leading_term(double n, std::uint32_t d) {
  NUBB_REQUIRE_MSG(d >= 2, "multiple-choice bounds need d >= 2");
  return ln_ln(n) / std::log(static_cast<double>(d));
}

double theorem3_bound(double n, std::uint32_t d, double additive) {
  return azar_leading_term(n, d) + additive;
}

double observation2_bound(double m, double n, double cbar, std::uint32_t d,
                          double gap_constant) {
  NUBB_REQUIRE_MSG(cbar >= 1.0 && n >= 1.0, "observation 2 needs cbar, n >= 1");
  return (m / n + gap_constant * azar_leading_term(n, d)) / cbar;
}

double heavily_loaded_max_balls(double m, double n, std::uint32_t d, double additive) {
  return m / n + azar_leading_term(n, d) + additive;
}

double big_bin_threshold(double n, double r) {
  NUBB_REQUIRE_MSG(r > 0.0, "big-bin constant must be positive");
  return r * std::log(n);
}

bool theorem1_applies(double m, double n, double c_small_total, double c_constant) {
  if (m >= n * n) return true;
  return c_small_total <= c_constant * std::pow(n * std::log(n), 2.0 / 3.0);
}

bool theorem2_applies(double total_capacity, double c_small_total, std::uint32_t d) {
  NUBB_REQUIRE_MSG(d >= 2, "theorem 2 needs d >= 2");
  NUBB_REQUIRE_MSG(total_capacity > 1.0, "theorem 2 needs C > 1");
  const double dd = static_cast<double>(d);
  const double bound =
      std::pow(total_capacity, (dd - 1.0) / dd) * std::pow(std::log(total_capacity), 1.0 / dd);
  return c_small_total <= bound;
}

double theorem5_bound(double k, double alpha, double q, double n) {
  NUBB_REQUIRE_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  NUBB_REQUIRE_MSG(q >= 1.0, "big capacity q must be >= 1");
  return k / alpha + ln_ln(n) / q;
}

}  // namespace nubb::bounds
