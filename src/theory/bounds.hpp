#pragma once

/// \file bounds.hpp
/// Closed-form predictions from the paper's analysis (Section 3) and from
/// the prior work it builds on. The benches print these next to measured
/// values; the property tests assert the measurements stay below the bounds
/// with generous slack.
///
/// All bounds are asymptotic with unspecified O(1) terms; functions take the
/// additive constant as a parameter so callers make their slack explicit.

#include <cstdint>

namespace nubb::bounds {

/// Leading term of the classic two-choice bound [Azar et al.]:
/// ln ln(n) / ln(d). Defined as 0 for n <= e (the bound is asymptotic).
double azar_leading_term(double n, std::uint32_t d);

/// Theorem 3: max load <= ln ln(n)/ln(d) + additive, w.h.p., for m = C.
double theorem3_bound(double n, std::uint32_t d, double additive);

/// Observation 2: uniform capacity cbar, m balls, n bins:
/// max load = (m/n + Theta(ln ln n / ln d)) / cbar; this returns the bound
/// with the Theta replaced by `gap_constant * ln ln n / ln d`.
double observation2_bound(double m, double n, double cbar, std::uint32_t d,
                          double gap_constant);

/// Heavily loaded case [Berenbrink et al. 2000], in *balls* (capacity 1):
/// m/n + ln ln(n)/ln(d) + additive.
double heavily_loaded_max_balls(double m, double n, std::uint32_t d, double additive);

/// The paper's "big bin" threshold: capacity >= r * ln(n).
double big_bin_threshold(double n, double r);

/// Observation 1 load cap for big bins (the proof gives 4).
constexpr double observation1_big_bin_load_cap() { return 4.0; }

/// Theorem 1 condition (either branch): m >= n^2, or
/// Cs <= c * (n ln n)^(2/3).
bool theorem1_applies(double m, double n, double c_small_total, double c_constant);

/// Theorem 2 condition: Cs <= C^((d-1)/d) * (log C)^(1/d).
bool theorem2_applies(double total_capacity, double c_small_total, std::uint32_t d);

/// Theorem 5 bound: with alpha*n bins of capacity q and probability 1/(alpha n)
/// on exactly those bins, max load <= k/alpha + O(ln ln n / q) for m = k*C.
double theorem5_bound(double k, double alpha, double q, double n);

}  // namespace nubb::bounds
