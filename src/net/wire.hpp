#pragma once

/// \file wire.hpp
/// Byte-level primitives of the serving wire format: a little-endian
/// append-only writer and a bounds-checked reader over one frame payload.
///
/// Every multi-byte integer on the wire is little-endian and fixed-width,
/// written byte by byte so the encoding is identical on every host
/// (doubles travel as their IEEE-754 bit pattern in a u64). The reader
/// throws `WireError` on any attempt to read past the payload end — frame
/// payloads are external input, so a short buffer is a protocol violation,
/// never UB. docs/serving.md documents the format.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace nubb {

/// Malformed wire data (truncated payload, over-limit length, bad tag).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder for one frame payload.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  /// IEEE-754 bit pattern in a u64 (bit-exact round trip).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Length-prefixed (u64 count) vector of u64.
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (const std::uint64_t x : v) u64(x);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over one frame payload.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    require(2);
    std::uint16_t v = 0;
    for (int shift = 0; shift < 16; shift += 8) {
      v = static_cast<std::uint16_t>(v | static_cast<std::uint16_t>(data_[pos_++]) << shift);
    }
    return v;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    }
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t len = u32();
    require(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t count = u64();
    // A count that cannot fit in the remaining payload is corrupt; check
    // before reserving so a hostile length cannot drive a huge allocation.
    if (count > remaining() / 8) {
      throw WireError("wire: u64 vector length exceeds payload");
    }
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) v.push_back(u64());
    return v;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }

  /// Every decoder calls this last: trailing bytes mean the two sides
  /// disagree about the message layout, which must fail loudly.
  void expect_end() const {
    if (pos_ != size_) throw WireError("wire: trailing bytes after message");
  }

 private:
  void require(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("wire: truncated payload");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace nubb
