#pragma once

/// \file socket.hpp
/// Blocking TCP transport for the frame protocol: a `SocketChannel` over a
/// connected stream socket plus the `SocketListener` the daemon accepts
/// from. Loopback-first: the daemon binds 127.0.0.1 by default and nothing
/// here speaks TLS — the serving protocol is an unauthenticated lab
/// instrument, not an internet endpoint (docs/serving.md).
///
/// Both classes are thin RAII wrappers over POSIX file descriptors; all
/// I/O is blocking with EINTR retried, so a session thread parks in
/// read(2) between requests and the accept loop polls with a timeout in
/// order to notice shutdown.

#include <cstdint>
#include <string>

#include "net/channel.hpp"

namespace nubb {

/// A connected TCP stream speaking the frame protocol. Use one per thread;
/// the framing state machine is not reentrant (same contract as
/// StreamChannel).
class SocketChannel final : public Channel {
 public:
  /// Connect to host:port (numeric IPv4 dotted quad or a resolvable name).
  /// \throws WireError when resolution or connection fails.
  static SocketChannel connect(const std::string& host, std::uint16_t port,
                               std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Adopt an already-connected descriptor (the accept path). Takes
  /// ownership; the descriptor is closed on destruction.
  explicit SocketChannel(int fd, std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  SocketChannel(SocketChannel&& other) noexcept;
  SocketChannel& operator=(SocketChannel&&) = delete;
  ~SocketChannel() override;

  int fd() const noexcept { return fd_; }

  /// Shut down the write side so the peer's next read sees EOF; reads keep
  /// draining. Lets a client signal "no more requests" without closing.
  void shutdown_write() noexcept;

 protected:
  void write_bytes(const std::uint8_t* data, std::size_t size) override;
  std::size_t read_bytes(std::uint8_t* data, std::size_t size) override;
  void flush() override {}  // no userspace buffer; TCP_NODELAY is set

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to `host:port`. Port 0 requests an
/// ephemeral port; `port()` reports the bound one (the daemon prints it and
/// writes it to --port-file so scripts can find the server).
class SocketListener {
 public:
  /// \throws WireError when bind or listen fails.
  SocketListener(const std::string& host, std::uint16_t port, int backlog = 64);

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;
  ~SocketListener();

  /// The port actually bound (resolves ephemeral requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Wait up to `timeout_ms` for a connection. Returns the connected
  /// descriptor, or -1 on timeout — the accept loop's chance to check its
  /// shutdown flag. \throws WireError on listener failure.
  int accept_for(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace nubb
