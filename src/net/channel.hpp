#pragma once

/// \file channel.hpp
/// Transport abstraction of the serving subsystem: framed, versioned
/// binary messages over an arbitrary byte pipe.
///
/// A frame is a fixed 12-byte header followed by the payload:
///
///   magic   u32  0x4242554E ("NUBB" little-endian) — stream sync check
///   version u16  kWireVersion — both sides must speak the same major
///   type    u16  MessageType of the payload (net/protocol.hpp)
///   length  u32  payload byte count, checked against max_frame_bytes
///
/// `Channel` is the interface the daemon, the client, and every test
/// speak; `StreamChannel` runs it over caller-supplied iostreams (the
/// deterministic in-process transport), `SocketChannel`
/// (net/socket.hpp) over blocking TCP. Patterned on APSI's network
/// layer (channel / stream_channel / zmq_channel): the protocol layer
/// never knows which transport carries its frames.
///
/// Thread discipline: one channel belongs to one session thread. Two
/// threads may own the two ends of a connected pair, but a single end is
/// never shared without external locking.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/wire.hpp"

namespace nubb {

/// Frame magic: "NUBB" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x4242554E;

/// Wire-format version. Bump on any incompatible header or message-layout
/// change; both sides refuse mismatched versions (docs/serving.md has the
/// compatibility rules).
inline constexpr std::uint16_t kWireVersion = 1;

/// Default receive-side payload ceiling. Large enough for a Snapshot of
/// ~8M bins; small enough that a corrupt length field cannot drive an
/// absurd allocation. Channels accept a custom limit for bigger arrays.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Message discriminator carried in every frame header. Requests occupy
/// the low range, responses the high range; kError can answer anything.
enum class MessageType : std::uint16_t {
  kPlaceRequest = 1,
  kBatchPlaceRequest = 2,
  kLookupRequest = 3,
  kSnapshotRequest = 4,
  kStatsRequest = 5,
  kShutdownRequest = 6,

  kPlaceResponse = 129,
  kBatchPlaceResponse = 130,
  kLookupResponse = 131,
  kSnapshotResponse = 132,
  kStatsResponse = 133,
  kShutdownResponse = 134,
  kErrorResponse = 255,
};

/// One received frame: the header's type plus the raw payload. The
/// protocol layer decodes the payload into a typed message.
struct Frame {
  MessageType type = MessageType::kErrorResponse;
  std::vector<std::uint8_t> payload;
};

/// Framed bidirectional message transport.
class Channel {
 public:
  explicit Channel(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Send one frame (header + payload), atomically from the peer's view.
  /// \throws WireError when the payload exceeds max_frame_bytes,
  ///         std::runtime_error on transport failure.
  void send_frame(MessageType type, const std::vector<std::uint8_t>& payload);

  /// Receive one frame. Returns false on clean end-of-stream at a frame
  /// boundary (the peer closed after a complete message). \throws WireError
  /// on a malformed header (bad magic, version mismatch, over-limit
  /// length) or a stream that ends mid-frame.
  bool receive_frame(Frame& frame);

  std::uint32_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

  /// Bytes moved through this channel (telemetry).
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t bytes_received() const noexcept { return bytes_received_; }

 protected:
  /// Transport hooks. write_bytes sends exactly `size` bytes or throws;
  /// read_bytes returns the count actually read (0 = end of stream) and
  /// throws only on transport errors.
  virtual void write_bytes(const std::uint8_t* data, std::size_t size) = 0;
  virtual std::size_t read_bytes(std::uint8_t* data, std::size_t size) = 0;

  /// Flush hook for buffered transports; called after every send_frame so
  /// a request is on the wire before the sender blocks on the response.
  virtual void flush() {}

 private:
  /// Read exactly `size` bytes. Returns false when the stream ended before
  /// the first byte (clean EOF); throws WireError when it ends after it.
  bool read_exact(std::uint8_t* data, std::size_t size);

  std::uint32_t max_frame_bytes_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Channel over caller-supplied iostreams — the in-process transport for
/// deterministic tests and request-log replay. The caller owns the
/// streams and their lifetime; badbit/failbit on either stream surfaces
/// as WireError / clean EOF exactly like a closed socket would.
class StreamChannel : public Channel {
 public:
  StreamChannel(std::istream& in, std::ostream& out,
                std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

 protected:
  void write_bytes(const std::uint8_t* data, std::size_t size) override;
  std::size_t read_bytes(std::uint8_t* data, std::size_t size) override;
  void flush() override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace nubb
