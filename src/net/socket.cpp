#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nubb {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw WireError("socket: " + what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  // Request/response round trips are latency-bound; without this, Nagle
  // holds the final partial segment of every frame until the peer ACKs.
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

struct AddrInfoHolder {
  addrinfo* list = nullptr;
  ~AddrInfoHolder() {
    if (list != nullptr) ::freeaddrinfo(list);
  }
};

}  // namespace

SocketChannel SocketChannel::connect(const std::string& host, std::uint16_t port,
                                     std::uint32_t max_frame_bytes) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  AddrInfoHolder res;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res.list);
  if (rc != 0) {
    throw WireError("socket: cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  int last_errno = 0;
  for (const addrinfo* ai = res.list; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(fd);
      return SocketChannel(fd, max_frame_bytes);
    }
    last_errno = errno;
    ::close(fd);
  }
  errno = last_errno;
  throw_errno("cannot connect to " + host + ":" + service);
}

SocketChannel::SocketChannel(int fd, std::uint32_t max_frame_bytes)
    : Channel(max_frame_bytes), fd_(fd) {
  set_nodelay(fd_);
}

SocketChannel::SocketChannel(SocketChannel&& other) noexcept
    : Channel(other.max_frame_bytes()), fd_(std::exchange(other.fd_, -1)) {}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void SocketChannel::write_bytes(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t SocketChannel::read_bytes(std::uint8_t* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv failed");
    }
    return static_cast<std::size_t>(n);  // 0 = orderly peer shutdown
  }
}

SocketListener::SocketListener(const std::string& host, std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("cannot create listener");

  int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw WireError("socket: listener host must be a numeric IPv4 address, got " + host);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("cannot read bound port");
  }
  port_ = ntohs(bound.sin_port);
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
}

int SocketListener::accept_for(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return -1;  // treated as a timeout tick
    throw_errno("poll on listener failed");
  }
  if (ready == 0) return -1;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return -1;
    throw_errno("accept failed");
  }
  return fd;
}

}  // namespace nubb
