#include "net/server.hpp"

#include <chrono>
#include <utility>
#include <vector>

namespace nubb {

PlacementServer::PlacementServer(PlacementService& service, const ServerConfig& cfg)
    : service_(service),
      listener_(cfg.host, cfg.port),
      pool_(cfg.session_threads == 0 ? 1 : cfg.session_threads),
      accept_poll_ms_(cfg.accept_poll_ms) {}

std::uint64_t PlacementServer::run() {
  std::uint64_t sessions = 0;
  std::vector<std::future<void>> live;
  while (!stop_.load(std::memory_order_relaxed) && !service_.shutdown_requested()) {
    const int fd = listener_.accept_for(accept_poll_ms_);
    if (fd < 0) continue;  // poll tick: re-check the shutdown flag
    ++sessions;
    live.push_back(pool_.submit([this, fd] {
      SocketChannel channel(fd);
      try {
        service_.serve(channel);
      } catch (...) {
        // A session must never take the daemon down; the channel closes
        // with the task and the client sees EOF.
      }
    }));
    // Reap finished sessions so `live` stays bounded by the pool width.
    std::size_t kept = 0;
    for (auto& f : live) {
      if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        live[kept++] = std::move(f);
      }
    }
    live.resize(kept);
  }
  for (auto& f : live) f.wait();
  pool_.wait_idle();
  return sessions;
}

}  // namespace nubb
