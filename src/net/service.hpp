#pragma once

/// \file service.hpp
/// The placement service: live bin state behind the placement kernel,
/// answering the wire API of net/protocol.hpp.
///
/// One `PlacementService` holds one game's state, split into S *placement
/// shards*. The bin set is partitioned into S contiguous, capacity-balanced
/// ranges (`partition_bins` in core/bin_range.hpp); each shard owns its
/// range as a `WeightedBinArray` sub-array, the `BinSampler` built from the
/// configured policy over its own capacities, a `PlacementKernel`
/// specialised at construction (stream, tie-break, memory config all
/// honored), an independently seeded RNG stream (`seed + shard`), and its
/// own state lock. Sessions from any number of channels funnel into the
/// shard table; requests touching different shards commit concurrently
/// instead of serialising on one coarse lock.
///
/// Composition rule (docs/serving.md "Sharded state"): arriving balls are
/// routed round robin — request k goes to shard k mod S, where k is the
/// request's ticket when it carries one and a global arrival counter
/// otherwise. Within a shard the per-shard lock serialises commits, so the
/// shard's process is the well-defined sequential game over its own range:
/// the state seen by its request j + 1 is the state left by its request j.
///
/// Determinism: each shard draws from its own RNG in its own commit order,
/// so for a fixed S a ticketed request log reproduces bit-identical state
/// no matter how many sessions replay it or how they interleave (shard s
/// serves tickets s, s + S, s + 2S, ... in order; different shards are
/// independent). With S = 1 the service is exactly the pre-shard coarse-lock
/// service: one bin array, one RNG seeded with `seed`, tickets globally
/// ordered — byte-identical responses, fingerprints and wire layout. With
/// S >= 2 the served process differs from the offline single-array game (by
/// design — candidates are drawn within the routed shard) but is itself
/// reproducible and test-locked. Stream v1 permits any request split;
/// stream v2 splits at the kernel's block boundaries — see docs/serving.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/bin_range.hpp"
#include "core/game.hpp"
#include "core/probability.hpp"
#include "net/protocol.hpp"
#include "util/histogram.hpp"

namespace nubb {

/// Everything a serving instance needs, parsed once by the daemon.
struct ServiceConfig {
  std::vector<std::uint64_t> capacities;
  SelectionPolicy policy = SelectionPolicy::proportional_to_capacity();
  GameConfig game;          ///< choices / tie-break / stream / memory; balls
                            ///< and batch are ignored (the clients decide)
  std::uint64_t seed = 1;   ///< base RNG seed; shard s draws from seed + s
  std::uint64_t max_balls = 0;  ///< placement horizon; 0 = total capacity.
                                ///< Bounds the kernel's comparison width;
                                ///< requests beyond it are refused.
  std::size_t service_shards = 1;  ///< placement shards S (clamped to the
                                   ///< bin count; 0 means 1). S = 1
                                   ///< reproduces the coarse-lock service
                                   ///< bit for bit.
  std::uint64_t max_weight = 1;    ///< largest ball weight accepted on the
                                   ///< wire; 1 keeps the unit-ball contract
                                   ///< (the PR-8 wire v1 behaviour). Also
                                   ///< bounds the kernels' comparison width.
  std::uint32_t session_threads = 0;  ///< daemon session pool size, echoed
                                      ///< in Stats for load clients (0 =
                                      ///< unknown / not a daemon)
};

/// Outcome of one session loop (serve()).
struct SessionResult {
  std::uint64_t requests = 0;        ///< frames answered
  bool shutdown_requested = false;   ///< session ended via Shutdown
};

class PlacementService {
 public:
  explicit PlacementService(const ServiceConfig& cfg);
  ~PlacementService();

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  // Typed handlers, one per wire op. Thread-safe; placements take exactly
  // one shard lock. Semantic rejections throw ServeError (sessions turn it
  // into an ErrorResponse and keep the connection alive).
  PlaceResponse place(const PlaceRequest& req);
  BatchPlaceResponse batch_place(const BatchPlaceRequest& req);
  LookupResponse lookup(const LookupRequest& req) const;
  SnapshotResponse snapshot() const;
  StatsResponse stats() const;
  ShutdownResponse shutdown();

  /// Session loop: answer requests from `channel` until clean EOF, a
  /// Shutdown request, or a framing error (framing errors poison the
  /// byte stream, so the session closes after a best-effort
  /// ErrorResponse; semantic errors do not).
  SessionResult serve(Channel& channel);

  /// Set once a Shutdown request was served; the accept loop polls it.
  bool shutdown_requested() const noexcept;

  /// Balls committed so far across all shards (telemetry; also in Stats).
  std::uint64_t balls_placed() const;

  std::size_t bins() const noexcept { return total_bins_; }
  std::uint64_t max_balls() const noexcept { return max_balls_; }

  /// Placement shards actually running (after clamping to the bin count).
  std::size_t service_shards() const noexcept { return shards_.size(); }

  /// Largest ball weight the wire accepts (>= 1).
  std::uint64_t max_weight() const noexcept { return max_weight_; }

 private:
  struct Shard;  // defined in service.cpp: sub-array + kernel + RNG + locks

  Shard& shard_for_request(std::uint64_t ticket);
  const Shard& shard_for_bin(std::uint64_t bin) const;
  void check_weight(std::uint64_t weight) const;
  std::uint64_t reserve_balls(std::uint64_t count);
  void wait_for_ticket_locked(Shard& sh, std::unique_lock<std::mutex>& lock,
                              std::uint64_t ticket);
  void finish_ticket_locked(Shard& sh, std::uint64_t ticket);
  void fold_summary_locked(const Shard& sh);
  void record_op(MessageType op, std::chrono::nanoseconds elapsed) const;
  void record_place(Shard& sh, bool is_batch, std::chrono::nanoseconds elapsed);

  // The shard table is immutable after construction (the unique_ptrs pin
  // shard addresses; Shard itself holds mutexes). Routing and lookups read
  // it lock-free.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t total_bins_ = 0;
  std::uint64_t max_balls_ = 0;
  std::uint64_t max_weight_ = 1;

  // Global counters shared by all shards. `reserved_balls_` is the horizon
  // reservation: a placement reserves its ball count here (CAS) before
  // committing, so the horizon check never needs more than one shard lock.
  // Commits cannot fail after a successful reservation, so the counter
  // equals the committed ball count whenever no placement is in flight.
  std::atomic<std::uint64_t> arrivals_{0};        ///< unticketed round-robin
  std::atomic<std::uint64_t> reserved_balls_{0};
  std::atomic<std::uint64_t> committed_weight_{0};
  std::atomic<bool> shutdown_{false};

  // Running global maximum load, folded from the shard maxima after every
  // commit (lock order: shard lock, then summary_mu_). Mirrors BinArray's
  // online maximum: strictly increasing updates only, argmax is the most
  // recent bin to raise it — at S = 1 it tracks the single shard's own
  // running maximum exactly.
  mutable std::mutex summary_mu_;
  Load summary_max_{0, 1};
  std::uint64_t summary_argmax_ = 0;

  // Session/op telemetry behind its own lock (mutable: const state queries
  // record their own op counters too — Stats promises one entry per op
  // seen). Place/BatchPlace latency lives on the shards and is folded by
  // stats().
  mutable std::mutex stats_mu_;
  mutable std::vector<OpStat> ops_;
  std::uint64_t sessions_ = 0;
  std::chrono::steady_clock::time_point started_;
  std::uint32_t session_threads_ = 0;
};

}  // namespace nubb
