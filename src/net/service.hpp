#pragma once

/// \file service.hpp
/// The placement service: live bin state behind the placement kernel,
/// answering the wire API of net/protocol.hpp.
///
/// One `PlacementService` holds one game's state — a `BinArray`, the
/// `BinSampler` built from the configured policy, a `PlacementKernel`
/// specialised at construction (stream, tie-break, memory config all
/// honored), and the single RNG whose draw order defines the served
/// sequence. Sessions from any number of channels funnel into it; a
/// coarse state lock serialises commits (BatchPlace amortises it over
/// `count` balls), which is exactly what makes the served process
/// well-defined: the state seen by request k + 1 is the state left by
/// request k, as in the offline sequential game.
///
/// Determinism: placements draw from one RNG in commit order, so a served
/// request log and an offline `play_game` replay of the same ball
/// sequence produce bit-identical state (stream v1: any request split;
/// stream v2: splits at the kernel's block boundaries — see
/// docs/serving.md). Ticketed requests let N concurrent clients replay a
/// fixed global order; see net/protocol.hpp.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/bin_array.hpp"
#include "core/game.hpp"
#include "core/placement_kernel.hpp"
#include "core/probability.hpp"
#include "core/sampler.hpp"
#include "net/protocol.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace nubb {

/// Everything a serving instance needs, parsed once by the daemon.
struct ServiceConfig {
  std::vector<std::uint64_t> capacities;
  SelectionPolicy policy = SelectionPolicy::proportional_to_capacity();
  GameConfig game;          ///< choices / tie-break / stream / memory; balls
                            ///< and batch are ignored (the clients decide)
  std::uint64_t seed = 1;   ///< seed of the single serving RNG
  std::uint64_t max_balls = 0;  ///< placement horizon; 0 = total capacity.
                                ///< Bounds the kernel's comparison width;
                                ///< requests beyond it are refused.
};

/// Outcome of one session loop (serve()).
struct SessionResult {
  std::uint64_t requests = 0;        ///< frames answered
  bool shutdown_requested = false;   ///< session ended via Shutdown
};

class PlacementService {
 public:
  explicit PlacementService(const ServiceConfig& cfg);

  // Typed handlers, one per wire op. Thread-safe; each takes the state
  // lock at most once. Semantic rejections throw ServeError (sessions
  // turn it into an ErrorResponse and keep the connection alive).
  PlaceResponse place(const PlaceRequest& req);
  BatchPlaceResponse batch_place(const BatchPlaceRequest& req);
  LookupResponse lookup(const LookupRequest& req) const;
  SnapshotResponse snapshot() const;
  StatsResponse stats() const;
  ShutdownResponse shutdown();

  /// Session loop: answer requests from `channel` until clean EOF, a
  /// Shutdown request, or a framing error (framing errors poison the
  /// byte stream, so the session closes after a best-effort
  /// ErrorResponse; semantic errors do not).
  SessionResult serve(Channel& channel);

  /// Set once a Shutdown request was served; the accept loop polls it.
  bool shutdown_requested() const noexcept;

  /// Balls committed so far (telemetry; also in Stats).
  std::uint64_t balls_placed() const;

  std::size_t bins() const noexcept { return bins_.size(); }
  std::uint64_t max_balls() const noexcept { return max_balls_; }

 private:
  std::uint64_t reserve_balls_locked(std::uint64_t count);
  void wait_for_ticket_locked(std::unique_lock<std::mutex>& lock, std::uint64_t ticket);
  void finish_ticket_locked(std::uint64_t ticket);
  void record_op(MessageType op, std::chrono::nanoseconds elapsed, bool is_place) const;

  mutable std::mutex mu_;  // guards everything below it
  BinArray bins_;
  BinSampler sampler_;
  PlacementKernel kernel_;
  Xoshiro256StarStar rng_;
  std::uint64_t max_balls_ = 0;
  std::uint64_t next_ticket_ = 0;  ///< the ticket allowed to commit next
  std::condition_variable ticket_cv_;
  bool shutdown_ = false;

  // Telemetry behind its own lock (mutable: const state queries record
  // their own op counters too — Stats promises one entry per op seen).
  mutable std::mutex stats_mu_;
  mutable std::vector<OpStat> ops_;
  mutable Histogram place_latency_us_;
  std::uint64_t sessions_ = 0;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace nubb
