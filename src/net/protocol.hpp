#pragma once

/// \file protocol.hpp
/// The serving wire API: one request/response struct per operation with
/// to/from-wire round-trip functions shared by the daemon and every
/// client, so the two sides cannot drift apart byte by byte.
///
/// Operations (docs/serving.md has the full field tables):
///
///   Place      — place one ball, returns its destination bin
///   BatchPlace — place `count` balls in one request (lock and syscall
///                amortization; the response summarises, Lookup/Snapshot
///                answer state queries)
///   Lookup     — one bin's ball count and capacity
///   Snapshot   — full per-bin ball counts + state fingerprint
///   Stats      — op counters and place-latency histogram
///   Shutdown   — end the session and stop the daemon accepting
///
/// Deterministic replay: a request may carry a `ticket` (a global request
/// sequence number). The service commits ticketed requests in strictly
/// increasing ticket order regardless of which session they arrive on, so
/// N concurrent clients replaying disjoint ticket sets reproduce the
/// offline single-threaded game bit for bit. `kNoTicket` skips ordering
/// (the load-generator path).

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/channel.hpp"
#include "net/wire.hpp"

namespace nubb {

/// Sentinel: this request does not participate in ticket ordering.
inline constexpr std::uint64_t kNoTicket = ~std::uint64_t{0};

/// Server-side rejection of a well-formed request (unknown bin, exhausted
/// horizon, ...). Travels as an ErrorResponse; clients rethrow it.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

// --- requests --------------------------------------------------------------

struct PlaceRequest {
  static constexpr MessageType kType = MessageType::kPlaceRequest;
  std::uint64_t ticket = kNoTicket;
  std::uint64_t weight = 1;  ///< reserved: v1 servers accept only 1

  void encode(WireWriter& w) const;
  static PlaceRequest decode(WireReader& r);
  bool operator==(const PlaceRequest&) const = default;
};

struct BatchPlaceRequest {
  static constexpr MessageType kType = MessageType::kBatchPlaceRequest;
  std::uint64_t ticket = kNoTicket;
  std::uint64_t count = 1;   ///< unit balls to place in one critical section
  std::uint64_t weight = 1;  ///< reserved: v1 servers accept only 1

  void encode(WireWriter& w) const;
  static BatchPlaceRequest decode(WireReader& r);
  bool operator==(const BatchPlaceRequest&) const = default;
};

struct LookupRequest {
  static constexpr MessageType kType = MessageType::kLookupRequest;
  std::uint64_t bin = 0;

  void encode(WireWriter& w) const;
  static LookupRequest decode(WireReader& r);
  bool operator==(const LookupRequest&) const = default;
};

struct SnapshotRequest {
  static constexpr MessageType kType = MessageType::kSnapshotRequest;

  void encode(WireWriter& w) const;
  static SnapshotRequest decode(WireReader& r);
  bool operator==(const SnapshotRequest&) const = default;
};

struct StatsRequest {
  static constexpr MessageType kType = MessageType::kStatsRequest;

  void encode(WireWriter& w) const;
  static StatsRequest decode(WireReader& r);
  bool operator==(const StatsRequest&) const = default;
};

struct ShutdownRequest {
  static constexpr MessageType kType = MessageType::kShutdownRequest;

  void encode(WireWriter& w) const;
  static ShutdownRequest decode(WireReader& r);
  bool operator==(const ShutdownRequest&) const = default;
};

// --- responses -------------------------------------------------------------

struct PlaceResponse {
  static constexpr MessageType kType = MessageType::kPlaceResponse;
  std::uint64_t bin = 0;       ///< destination bin index
  std::uint64_t balls = 0;     ///< its ball count after the placement
  std::uint64_t capacity = 1;  ///< its capacity

  void encode(WireWriter& w) const;
  static PlaceResponse decode(WireReader& r);
  bool operator==(const PlaceResponse&) const = default;
};

struct BatchPlaceResponse {
  static constexpr MessageType kType = MessageType::kBatchPlaceResponse;
  std::uint64_t placed = 0;        ///< balls committed by this request
  std::uint64_t total_balls = 0;   ///< served total after the batch
  std::uint64_t max_load_num = 0;  ///< running maximum load, numerator
  std::uint64_t max_load_cap = 1;  ///< running maximum load, capacity
  std::uint64_t argmax_bin = 0;    ///< a bin attaining the maximum

  void encode(WireWriter& w) const;
  static BatchPlaceResponse decode(WireReader& r);
  bool operator==(const BatchPlaceResponse&) const = default;
};

struct LookupResponse {
  static constexpr MessageType kType = MessageType::kLookupResponse;
  std::uint64_t bin = 0;
  std::uint64_t balls = 0;
  std::uint64_t capacity = 1;

  void encode(WireWriter& w) const;
  static LookupResponse decode(WireReader& r);
  bool operator==(const LookupResponse&) const = default;
};

/// Per-shard provenance inside a SnapshotResponse (sharded daemons only).
struct ShardSnapshot {
  std::uint64_t first_bin = 0;    ///< first global bin index of the range
  std::uint64_t bins = 0;         ///< bins in the range
  std::uint64_t balls = 0;        ///< numerator total committed to the range
  std::uint64_t fingerprint = 0;  ///< FNV-1a of the range's slots alone

  bool operator==(const ShardSnapshot&) const = default;
};

struct SnapshotResponse {
  static constexpr MessageType kType = MessageType::kSnapshotResponse;
  std::uint64_t total_balls = 0;
  std::uint64_t total_capacity = 0;
  std::uint64_t max_load_num = 0;
  std::uint64_t max_load_cap = 1;
  std::uint64_t fingerprint = 0;       ///< BinArray::fingerprint() of the state
  std::vector<std::uint64_t> counts;   ///< per-bin ball counts, bin order

  /// Shard provenance, in bin-range order. Present only when the daemon
  /// runs 2+ placement shards — a single-shard daemon emits the exact PR-8
  /// byte layout, which is what keeps old clients parsing (versioning rule
  /// 3: additive evolution within a version via an optional trailing
  /// block). Each shard fingerprint is the standalone FNV-1a of its own
  /// slot range (verifiable against `counts`); byte-folding the ranges in
  /// order — BinArrayView::fingerprint_fold — reproduces the top-level
  /// `fingerprint`.
  std::vector<ShardSnapshot> shards;

  void encode(WireWriter& w) const;
  static SnapshotResponse decode(WireReader& r);
  bool operator==(const SnapshotResponse&) const = default;
};

/// Per-operation counters inside a StatsResponse.
struct OpStat {
  std::uint16_t op = 0;         ///< MessageType of the request
  std::uint64_t count = 0;      ///< requests served
  std::uint64_t total_ns = 0;   ///< summed wall time inside the service

  bool operator==(const OpStat&) const = default;
};

/// Wire form of a util/histogram.hpp Histogram (fixed-width cells plus
/// range-escape counters); enough to compute any percentile client-side.
struct WireHistogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;

  /// Total samples including the escape counters.
  std::uint64_t total() const noexcept;

  /// Upper-bound quantile over the recorded samples: the cell upper edge
  /// (or `hi` for overflow) below which at least fraction `q` of the
  /// samples fall. Conservative for SLO reporting — never understates.
  double quantile_upper(double q) const;

  bool operator==(const WireHistogram&) const = default;
};

/// Per-shard provenance inside a StatsResponse (sharded daemons only).
struct ShardStat {
  std::uint64_t first_bin = 0;      ///< first global bin index of the range
  std::uint64_t bins = 0;           ///< bins in the range
  std::uint64_t balls_placed = 0;   ///< balls committed through this shard

  bool operator==(const ShardStat&) const = default;
};

struct StatsResponse {
  static constexpr MessageType kType = MessageType::kStatsResponse;
  std::uint64_t uptime_ns = 0;
  std::uint64_t sessions = 0;       ///< sessions served (incl. live ones)
  std::uint64_t balls_placed = 0;   ///< balls committed so far (all shards)
  std::vector<OpStat> ops;          ///< one entry per op type seen
  WireHistogram place_latency_us;   ///< Place/BatchPlace service time, µs
                                    ///< (fold of the per-shard histograms)

  /// Shard provenance, present only when the daemon runs 2+ placement
  /// shards (same optional-trailing-block rule as SnapshotResponse::shards;
  /// a single-shard daemon emits the exact PR-8 layout).
  /// `session_threads` is the daemon's session pool size — nubb_load uses
  /// it to default the per-core divisor honestly once the server shards.
  std::uint32_t service_shards = 1;
  std::uint32_t session_threads = 0;
  std::vector<ShardStat> shards;

  void encode(WireWriter& w) const;
  static StatsResponse decode(WireReader& r);
  bool operator==(const StatsResponse&) const = default;
};

struct ShutdownResponse {
  static constexpr MessageType kType = MessageType::kShutdownResponse;

  void encode(WireWriter& w) const;
  static ShutdownResponse decode(WireReader& r);
  bool operator==(const ShutdownResponse&) const = default;
};

struct ErrorResponse {
  static constexpr MessageType kType = MessageType::kErrorResponse;
  std::string message;

  void encode(WireWriter& w) const;
  static ErrorResponse decode(WireReader& r);
  bool operator==(const ErrorResponse&) const = default;
};

// --- framing helpers shared by daemon and client ---------------------------

/// Every request the service understands, in one decodable sum type.
using Request = std::variant<PlaceRequest, BatchPlaceRequest, LookupRequest, SnapshotRequest,
                             StatsRequest, ShutdownRequest>;

/// Decode a received frame into a Request. \throws WireError on a
/// non-request frame type or malformed payload.
Request decode_request(const Frame& frame);

/// Encode and send one message (request or response).
template <typename Msg>
void send_message(Channel& channel, const Msg& msg) {
  WireWriter w;
  msg.encode(w);
  channel.send_frame(Msg::kType, w.bytes());
}

/// Decode a frame known to carry `Msg`. \throws WireError on type
/// mismatch or malformed/overlong payload.
template <typename Msg>
Msg decode_message(const Frame& frame) {
  if (frame.type != Msg::kType) {
    throw WireError("protocol: unexpected frame type " +
                    std::to_string(static_cast<int>(frame.type)));
  }
  WireReader r(frame.payload);
  Msg msg = Msg::decode(r);
  r.expect_end();
  return msg;
}

/// Client side of one round trip: send the request, receive one frame,
/// decode the matching response. An ErrorResponse from the server is
/// rethrown as ServeError; a closed stream or a type mismatch is a
/// WireError.
template <typename Resp, typename Req>
Resp round_trip(Channel& channel, const Req& request) {
  send_message(channel, request);
  Frame frame;
  if (!channel.receive_frame(frame)) {
    throw WireError("protocol: server closed the stream before responding");
  }
  if (frame.type == MessageType::kErrorResponse) {
    throw ServeError(decode_message<ErrorResponse>(frame).message);
  }
  return decode_message<Resp>(frame);
}

}  // namespace nubb
