#pragma once

/// \file server.hpp
/// The daemon's accept loop: a SocketListener feeding sessions into a
/// PlacementService, one session task per client connection on a
/// ThreadPool (the repo's worker idiom — no detached threads, destruction
/// joins everything).
///
/// Lifecycle: `run()` accepts until a served Shutdown request flips the
/// service's flag (or `stop()` is called from another thread), then drains
/// live sessions and returns. The poll timeout in accept_for bounds how
/// stale the flag check can be.

#include <atomic>
#include <cstdint>
#include <string>

#include "net/service.hpp"
#include "net/socket.hpp"
#include "util/thread_pool.hpp"

namespace nubb {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< numeric IPv4 bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral; see PlacementServer::port()
  std::size_t session_threads = 8; ///< concurrent sessions served
  int accept_poll_ms = 100;        ///< shutdown-flag staleness bound
};

/// Owns the listener and the session pool; borrows the service (the daemon
/// owns it, and tests drive the same service through StreamChannels).
class PlacementServer {
 public:
  /// Binds immediately so the caller can report the port before serving.
  /// \throws WireError when the bind fails.
  PlacementServer(PlacementService& service, const ServerConfig& cfg);

  /// The bound port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Accept and serve until shutdown; returns sessions served. Blocks the
  /// calling thread (the daemon's main thread) — session work happens on
  /// the pool.
  std::uint64_t run();

  /// Ask run() to return after its current poll tick (e.g. from a signal
  /// handler thread). A served Shutdown request has the same effect.
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

 private:
  PlacementService& service_;
  SocketListener listener_;
  ThreadPool pool_;
  int accept_poll_ms_;
  std::atomic<bool> stop_{false};
};

}  // namespace nubb
