#include "net/channel.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace nubb {

namespace {

constexpr std::size_t kHeaderBytes = 12;

void encode_header(std::uint8_t* h, MessageType type, std::uint32_t length) {
  const std::uint32_t magic = kFrameMagic;
  const std::uint16_t version = kWireVersion;
  const std::uint16_t t = static_cast<std::uint16_t>(type);
  for (int i = 0; i < 4; ++i) h[i] = static_cast<std::uint8_t>(magic >> (8 * i));
  for (int i = 0; i < 2; ++i) h[4 + i] = static_cast<std::uint8_t>(version >> (8 * i));
  for (int i = 0; i < 2; ++i) h[6 + i] = static_cast<std::uint8_t>(t >> (8 * i));
  for (int i = 0; i < 4; ++i) h[8 + i] = static_cast<std::uint8_t>(length >> (8 * i));
}

}  // namespace

void Channel::send_frame(MessageType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > max_frame_bytes_) {
    throw WireError("channel: frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(max_frame_bytes_) + "-byte limit");
  }
  std::uint8_t header[kHeaderBytes];
  encode_header(header, type, static_cast<std::uint32_t>(payload.size()));
  write_bytes(header, kHeaderBytes);
  if (!payload.empty()) write_bytes(payload.data(), payload.size());
  flush();
  bytes_sent_ += kHeaderBytes + payload.size();
}

bool Channel::receive_frame(Frame& frame) {
  std::uint8_t header[kHeaderBytes];
  if (!read_exact(header, kHeaderBytes)) return false;

  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (magic != kFrameMagic) {
    throw WireError("channel: bad frame magic (stream out of sync or not a nubb peer)");
  }
  std::uint16_t version = 0;
  for (int i = 0; i < 2; ++i) {
    version = static_cast<std::uint16_t>(version |
                                         static_cast<std::uint16_t>(header[4 + i]) << (8 * i));
  }
  if (version != kWireVersion) {
    throw WireError("channel: wire version " + std::to_string(version) +
                    " from peer, this build speaks " + std::to_string(kWireVersion));
  }
  std::uint16_t type = 0;
  for (int i = 0; i < 2; ++i) {
    type = static_cast<std::uint16_t>(type |
                                      static_cast<std::uint16_t>(header[6 + i]) << (8 * i));
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
  if (length > max_frame_bytes_) {
    throw WireError("channel: frame length " + std::to_string(length) + " exceeds the " +
                    std::to_string(max_frame_bytes_) + "-byte limit");
  }

  frame.type = static_cast<MessageType>(type);
  frame.payload.resize(length);
  if (length != 0 && !read_exact(frame.payload.data(), length)) {
    throw WireError("channel: stream ended inside a frame payload");
  }
  bytes_received_ += kHeaderBytes + length;
  return true;
}

bool Channel::read_exact(std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = read_bytes(data + got, size - got);
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw WireError("channel: stream ended mid-frame (" + std::to_string(got) + " of " +
                      std::to_string(size) + " bytes)");
    }
    got += n;
  }
  return true;
}

StreamChannel::StreamChannel(std::istream& in, std::ostream& out,
                             std::uint32_t max_frame_bytes)
    : Channel(max_frame_bytes), in_(in), out_(out) {}

void StreamChannel::write_bytes(const std::uint8_t* data, std::size_t size) {
  out_.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out_) throw WireError("stream channel: write failed");
}

std::size_t StreamChannel::read_bytes(std::uint8_t* data, std::size_t size) {
  in_.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(size));
  const std::streamsize got = in_.gcount();
  if (got < 0) throw WireError("stream channel: read failed");
  return static_cast<std::size_t>(got);
}

void StreamChannel::flush() { out_.flush(); }

}  // namespace nubb
