#include "net/service.hpp"

#include <string>
#include <utility>

namespace nubb {

namespace {

// Place-latency histogram geometry: 1 µs cells over [0, 1000) µs. A
// loopback round trip sits well inside the range; anything above 1 ms
// lands in the overflow counter, which the percentile math treats as
// "at least hi" — conservative, never flattering.
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 1000.0;
constexpr std::size_t kLatencyBins = 1000;

// A ticketed request that never gets its turn (a hole in the replayed
// log) must fail loudly instead of deadlocking the session thread.
constexpr std::chrono::seconds kTicketTimeout{30};

std::uint64_t resolve_max_balls(const ServiceConfig& cfg) {
  if (cfg.max_balls != 0) return cfg.max_balls;
  std::uint64_t total = 0;
  for (const std::uint64_t c : cfg.capacities) total += c;
  return total;
}

GameConfig service_game_config(const ServiceConfig& cfg, std::uint64_t max_balls) {
  GameConfig game = cfg.game;
  game.balls = max_balls;  // the kernel's planned horizon, not a run length
  game.batch = 1;
  return game;
}

template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

}  // namespace

PlacementService::PlacementService(const ServiceConfig& cfg)
    : bins_(cfg.capacities, cfg.game.memory),
      sampler_(BinSampler::from_policy(cfg.policy, cfg.capacities)),
      kernel_(bins_, sampler_, service_game_config(cfg, resolve_max_balls(cfg)),
              resolve_max_balls(cfg)),
      rng_(cfg.seed),
      max_balls_(resolve_max_balls(cfg)),
      place_latency_us_(kLatencyLoUs, kLatencyHiUs, kLatencyBins),
      started_(std::chrono::steady_clock::now()) {}

std::uint64_t PlacementService::reserve_balls_locked(std::uint64_t count) {
  const std::uint64_t placed = kernel_.placed_balls();
  if (count > max_balls_ - placed) {
    throw ServeError("placement horizon exhausted: " + std::to_string(placed) + " of " +
                     std::to_string(max_balls_) +
                     " balls placed, request adds " + std::to_string(count));
  }
  return placed;
}

void PlacementService::wait_for_ticket_locked(std::unique_lock<std::mutex>& lock,
                                              std::uint64_t ticket) {
  if (ticket == kNoTicket) return;
  if (ticket < next_ticket_) {
    throw ServeError("ticket " + std::to_string(ticket) + " already served (next is " +
                     std::to_string(next_ticket_) + ")");
  }
  if (!ticket_cv_.wait_for(lock, kTicketTimeout,
                           [&] { return next_ticket_ == ticket; })) {
    throw ServeError("ticket " + std::to_string(ticket) +
                     " timed out waiting for its turn (next is " +
                     std::to_string(next_ticket_) + ")");
  }
}

void PlacementService::finish_ticket_locked(std::uint64_t ticket) {
  if (ticket == kNoTicket) return;
  ++next_ticket_;
  ticket_cv_.notify_all();
}

void PlacementService::record_op(MessageType op, std::chrono::nanoseconds elapsed,
                                 bool is_place) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const std::uint16_t key = static_cast<std::uint16_t>(op);
  OpStat* entry = nullptr;
  for (OpStat& s : ops_) {
    if (s.op == key) {
      entry = &s;
      break;
    }
  }
  if (entry == nullptr) {
    ops_.push_back(OpStat{key, 0, 0});
    entry = &ops_.back();
  }
  ++entry->count;
  entry->total_ns += static_cast<std::uint64_t>(elapsed.count());
  if (is_place) {
    place_latency_us_.add(static_cast<double>(elapsed.count()) / 1000.0);
  }
}

PlaceResponse PlacementService::place(const PlaceRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  PlaceResponse resp;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (req.weight != 1) {
      throw ServeError("weighted placements are reserved in wire v1 (weight must be 1)");
    }
    wait_for_ticket_locked(lock, req.ticket);
    try {
      reserve_balls_locked(1);
      const std::size_t dest = kernel_.place_one(rng_);
      resp.bin = dest;
      resp.balls = bins_.balls(dest);
      resp.capacity = bins_.capacity(dest);
    } catch (...) {
      // A failed ticketed request still consumes its ticket: the replayed
      // log must keep advancing for the other sessions.
      finish_ticket_locked(req.ticket);
      throw;
    }
    finish_ticket_locked(req.ticket);
  }
  record_op(MessageType::kPlaceRequest, std::chrono::steady_clock::now() - t0,
            /*is_place=*/true);
  return resp;
}

BatchPlaceResponse PlacementService::batch_place(const BatchPlaceRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  BatchPlaceResponse resp;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (req.weight != 1) {
      throw ServeError("weighted placements are reserved in wire v1 (weight must be 1)");
    }
    wait_for_ticket_locked(lock, req.ticket);
    try {
      reserve_balls_locked(req.count);
      // One fused kernel run under one lock acquisition — the batch
      // amortization. Under stream v1 this consumes draws exactly like
      // `count` single places, so request batching never moves a ball.
      kernel_.run(req.count, rng_);
      resp.placed = req.count;
      resp.total_balls = bins_.total_balls();
      resp.max_load_num = bins_.max_load().balls;
      resp.max_load_cap = bins_.max_load().capacity;
      resp.argmax_bin = bins_.argmax_bin();
    } catch (...) {
      finish_ticket_locked(req.ticket);
      throw;
    }
    finish_ticket_locked(req.ticket);
  }
  record_op(MessageType::kBatchPlaceRequest, std::chrono::steady_clock::now() - t0,
            /*is_place=*/true);
  return resp;
}

LookupResponse PlacementService::lookup(const LookupRequest& req) const {
  const auto t0 = std::chrono::steady_clock::now();
  LookupResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (req.bin >= bins_.size()) {
      throw ServeError("lookup: bin " + std::to_string(req.bin) + " out of range (n = " +
                       std::to_string(bins_.size()) + ")");
    }
    resp.bin = req.bin;
    resp.balls = bins_.balls(static_cast<std::size_t>(req.bin));
    resp.capacity = bins_.capacity(static_cast<std::size_t>(req.bin));
  }
  record_op(MessageType::kLookupRequest, std::chrono::steady_clock::now() - t0,
            /*is_place=*/false);
  return resp;
}

SnapshotResponse PlacementService::snapshot() const {
  const auto t0 = std::chrono::steady_clock::now();
  SnapshotResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    resp.total_balls = bins_.total_balls();
    resp.total_capacity = bins_.total_capacity();
    resp.max_load_num = bins_.max_load().balls;
    resp.max_load_cap = bins_.max_load().capacity;
    resp.fingerprint = bins_.fingerprint();
    resp.counts = bins_.ball_counts();
  }
  record_op(MessageType::kSnapshotRequest, std::chrono::steady_clock::now() - t0,
            /*is_place=*/false);
  return resp;
}

StatsResponse PlacementService::stats() const {
  StatsResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    resp.balls_placed = kernel_.placed_balls();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  resp.uptime_ns = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                  std::chrono::steady_clock::now() - started_)
                                                  .count());
  resp.sessions = sessions_;
  resp.ops = ops_;
  resp.place_latency_us.lo = kLatencyLoUs;
  resp.place_latency_us.hi = kLatencyHiUs;
  resp.place_latency_us.counts.resize(place_latency_us_.bins());
  for (std::size_t i = 0; i < place_latency_us_.bins(); ++i) {
    resp.place_latency_us.counts[i] = place_latency_us_.count(i);
  }
  resp.place_latency_us.underflow = place_latency_us_.underflow();
  resp.place_latency_us.overflow = place_latency_us_.overflow();
  return resp;
}

ShutdownResponse PlacementService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  record_op(MessageType::kShutdownRequest, std::chrono::nanoseconds{0}, /*is_place=*/false);
  return ShutdownResponse{};
}

bool PlacementService::shutdown_requested() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

std::uint64_t PlacementService::balls_placed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kernel_.placed_balls();
}

SessionResult PlacementService::serve(Channel& channel) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++sessions_;
  }
  SessionResult result;
  Frame frame;
  for (;;) {
    try {
      if (!channel.receive_frame(frame)) return result;  // clean EOF
    } catch (const WireError&) {
      // The byte stream is out of sync; an ErrorResponse may or may not
      // reach the peer, but the session cannot continue either way.
      try {
        send_message(channel, ErrorResponse{"malformed frame; closing session"});
      } catch (...) {
      }
      return result;
    }

    try {
      const Request request = decode_request(frame);
      std::visit(Overloaded{
                     [&](const PlaceRequest& r) { send_message(channel, place(r)); },
                     [&](const BatchPlaceRequest& r) { send_message(channel, batch_place(r)); },
                     [&](const LookupRequest& r) { send_message(channel, lookup(r)); },
                     [&](const SnapshotRequest&) { send_message(channel, snapshot()); },
                     [&](const StatsRequest&) { send_message(channel, stats()); },
                     [&](const ShutdownRequest&) {
                       send_message(channel, shutdown());
                       result.shutdown_requested = true;
                     },
                 },
                 request);
    } catch (const ServeError& e) {
      // Semantic rejection: report and keep the session alive — the frame
      // boundary is intact.
      send_message(channel, ErrorResponse{e.what()});
    } catch (const WireError&) {
      try {
        send_message(channel, ErrorResponse{"malformed request payload; closing session"});
      } catch (...) {
      }
      return result;
    }
    ++result.requests;
    if (result.shutdown_requested) return result;
  }
}

}  // namespace nubb
