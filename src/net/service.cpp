#include "net/service.hpp"

#include <condition_variable>
#include <string>
#include <utility>

#include "core/bin_array.hpp"
#include "core/placement_kernel.hpp"
#include "core/sampler.hpp"
#include "core/weighted.hpp"
#include "util/rng.hpp"

namespace nubb {

namespace {

// Place-latency histogram geometry: 1 µs cells over [0, 1000) µs. A
// loopback round trip sits well inside the range; anything above 1 ms
// lands in the overflow counter, which the percentile math treats as
// "at least hi" — conservative, never flattering.
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 1000.0;
constexpr std::size_t kLatencyBins = 1000;

// A ticketed request that never gets its turn (a hole in the replayed
// log) must fail loudly instead of deadlocking the session thread.
constexpr std::chrono::seconds kTicketTimeout{30};

std::uint64_t resolve_max_balls(const ServiceConfig& cfg) {
  if (cfg.max_balls != 0) return cfg.max_balls;
  std::uint64_t total = 0;
  for (const std::uint64_t c : cfg.capacities) total += c;
  return total;
}

GameConfig shard_game_config(const ServiceConfig& cfg, std::uint64_t planned) {
  GameConfig game = cfg.game;
  game.balls = planned;  // the kernel's planned horizon, not a run length
  game.batch = 1;
  return game;
}

template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

}  // namespace

/// One placement shard: a contiguous capacity-balanced bin range owned as a
/// private sub-array with its own sampler, kernel, RNG stream and locks.
/// The weighted array and the kernel's weighted form serve unit balls
/// bit-identically to the unweighted pair (amount = 1 walks the same fused
/// path), which is what lets one state type cover both the PR-8 wire
/// contract and --max-weight daemons.
struct PlacementService::Shard {
  const std::size_t index;      ///< shard number in [0, S)
  const std::size_t first_bin;  ///< first global bin index of the range

  WeightedBinArray bins;   ///< this shard's sub-array (local indices)
  BinSampler sampler;      ///< policy over the shard's own capacities
  PlacementKernel kernel;  ///< fused placement over bins/sampler
  Xoshiro256StarStar rng;  ///< stream `seed + index`

  // State lock: guards bins/kernel/rng/next_ticket. Ticketed requests for
  // this shard (tickets ≡ index mod S) wait on ticket_cv in ticket order.
  mutable std::mutex mu;
  std::condition_variable ticket_cv;
  std::uint64_t next_ticket;

  // Telemetry for this shard's Place/BatchPlace traffic, recorded outside
  // the state lock so the histogram update never extends a commit's
  // critical section.
  mutable std::mutex stats_mu;
  Histogram latency_us{kLatencyLoUs, kLatencyHiUs, kLatencyBins};
  std::uint64_t place_count = 0;
  std::uint64_t place_ns = 0;
  std::uint64_t batch_count = 0;
  std::uint64_t batch_ns = 0;

  Shard(std::size_t idx, const BinRange& range, const std::vector<std::uint64_t>& caps,
        const ServiceConfig& cfg, std::uint64_t planned, std::uint64_t max_w)
      : index(idx),
        first_bin(range.first),
        bins(caps, cfg.game.memory),
        sampler(BinSampler::from_policy(cfg.policy, caps, cfg.game.memory)),
        kernel(bins, sampler, shard_game_config(cfg, planned), planned, max_w),
        rng(cfg.seed + idx),
        next_ticket(idx) {}
};

PlacementService::PlacementService(const ServiceConfig& cfg)
    : total_bins_(cfg.capacities.size()),
      max_balls_(resolve_max_balls(cfg)),
      max_weight_(cfg.max_weight == 0 ? 1 : cfg.max_weight),
      started_(std::chrono::steady_clock::now()),
      session_threads_(cfg.session_threads) {
  const std::size_t want = cfg.service_shards == 0 ? 1 : cfg.service_shards;
  const std::vector<BinRange> ranges = partition_bins(cfg.capacities, want);
  shards_.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    const std::vector<std::uint64_t> caps(
        cfg.capacities.begin() + static_cast<std::ptrdiff_t>(ranges[s].first),
        cfg.capacities.begin() + static_cast<std::ptrdiff_t>(ranges[s].end()));
    // Every shard's kernel is sized for the full horizon (round-robin
    // routing cannot promise a shard less than everything), so the
    // comparison-width choice is safe under any routing skew.
    shards_.push_back(
        std::make_unique<Shard>(s, ranges[s], caps, cfg, max_balls_, max_weight_));
  }
}

PlacementService::~PlacementService() = default;

PlacementService::Shard& PlacementService::shard_for_request(std::uint64_t ticket) {
  const std::size_t s = ticket == kNoTicket
                            ? static_cast<std::size_t>(
                                  arrivals_.fetch_add(1, std::memory_order_relaxed) %
                                  shards_.size())
                            : static_cast<std::size_t>(ticket % shards_.size());
  return *shards_[s];
}

const PlacementService::Shard& PlacementService::shard_for_bin(std::uint64_t bin) const {
  // The ranges tile [0, n) in order; scan for the owner (S is small).
  for (std::size_t s = shards_.size(); s-- > 1;) {
    if (bin >= shards_[s]->first_bin) return *shards_[s];
  }
  return *shards_[0];
}

void PlacementService::check_weight(std::uint64_t weight) const {
  if (weight == 1) return;
  if (max_weight_ == 1) {
    // The PR-8 contract: unit balls only unless the daemon opted in.
    throw ServeError("weighted placements are disabled (daemon max weight is 1; "
                     "restart with --max-weight to serve weighted balls)");
  }
  if (weight == 0 || weight > max_weight_) {
    throw ServeError("ball weight " + std::to_string(weight) + " outside [1, " +
                     std::to_string(max_weight_) + "]");
  }
}

std::uint64_t PlacementService::reserve_balls(std::uint64_t count) {
  std::uint64_t reserved = reserved_balls_.load(std::memory_order_relaxed);
  for (;;) {
    if (count > max_balls_ - reserved) {
      throw ServeError("placement horizon exhausted: " + std::to_string(reserved) +
                       " of " + std::to_string(max_balls_) +
                       " balls placed, request adds " + std::to_string(count));
    }
    if (reserved_balls_.compare_exchange_weak(reserved, reserved + count,
                                              std::memory_order_relaxed)) {
      return reserved;
    }
  }
}

void PlacementService::wait_for_ticket_locked(Shard& sh,
                                              std::unique_lock<std::mutex>& lock,
                                              std::uint64_t ticket) {
  if (ticket == kNoTicket) return;
  if (ticket < sh.next_ticket) {
    throw ServeError("ticket " + std::to_string(ticket) + " already served (next is " +
                     std::to_string(sh.next_ticket) + ")");
  }
  if (!sh.ticket_cv.wait_for(lock, kTicketTimeout,
                             [&] { return sh.next_ticket == ticket; })) {
    throw ServeError("ticket " + std::to_string(ticket) +
                     " timed out waiting for its turn (next is " +
                     std::to_string(sh.next_ticket) + ")");
  }
}

void PlacementService::finish_ticket_locked(Shard& sh, std::uint64_t ticket) {
  if (ticket == kNoTicket) return;
  // This shard serves the tickets congruent to its index mod S, in order.
  sh.next_ticket += shards_.size();
  sh.ticket_cv.notify_all();
}

void PlacementService::fold_summary_locked(const Shard& sh) {
  // Caller holds sh.mu (lock order: shard, then summary). Strictly
  // increasing updates only, mirroring BinArray's online maximum.
  const Load shard_max = sh.bins.max_load();
  std::lock_guard<std::mutex> lock(summary_mu_);
  if (summary_max_ < shard_max) {
    summary_max_ = shard_max;
    summary_argmax_ = sh.first_bin + sh.bins.argmax_bin();
  }
}

void PlacementService::record_op(MessageType op, std::chrono::nanoseconds elapsed) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  const std::uint16_t key = static_cast<std::uint16_t>(op);
  OpStat* entry = nullptr;
  for (OpStat& s : ops_) {
    if (s.op == key) {
      entry = &s;
      break;
    }
  }
  if (entry == nullptr) {
    ops_.push_back(OpStat{key, 0, 0});
    entry = &ops_.back();
  }
  ++entry->count;
  entry->total_ns += static_cast<std::uint64_t>(elapsed.count());
}

void PlacementService::record_place(Shard& sh, bool is_batch,
                                    std::chrono::nanoseconds elapsed) {
  const std::uint64_t ns = static_cast<std::uint64_t>(elapsed.count());
  std::lock_guard<std::mutex> lock(sh.stats_mu);
  if (is_batch) {
    ++sh.batch_count;
    sh.batch_ns += ns;
  } else {
    ++sh.place_count;
    sh.place_ns += ns;
  }
  sh.latency_us.add(static_cast<double>(ns) / 1000.0);
}

PlaceResponse PlacementService::place(const PlaceRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  check_weight(req.weight);  // rejected before routing: consumes no ticket
  Shard& sh = shard_for_request(req.ticket);
  PlaceResponse resp;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    wait_for_ticket_locked(sh, lock, req.ticket);
    try {
      reserve_balls(1);
      // amount = 1 walks the identical fused path as the unit place_one.
      const std::size_t dest = sh.kernel.place_one_amount(req.weight, sh.rng);
      resp.bin = sh.first_bin + dest;
      resp.balls = sh.bins.weight(dest);
      resp.capacity = sh.bins.capacity(dest);
      committed_weight_.fetch_add(req.weight, std::memory_order_relaxed);
      fold_summary_locked(sh);
    } catch (...) {
      // A failed ticketed request still consumes its ticket: the replayed
      // log must keep advancing for the other sessions.
      finish_ticket_locked(sh, req.ticket);
      throw;
    }
    finish_ticket_locked(sh, req.ticket);
  }
  record_place(sh, /*is_batch=*/false, std::chrono::steady_clock::now() - t0);
  return resp;
}

BatchPlaceResponse PlacementService::batch_place(const BatchPlaceRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  check_weight(req.weight);
  Shard& sh = shard_for_request(req.ticket);
  BatchPlaceResponse resp;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    wait_for_ticket_locked(sh, lock, req.ticket);
    try {
      reserve_balls(req.count);
      // One fused kernel run under one lock acquisition — the batch
      // amortization. Under stream v1 this consumes draws exactly like
      // `count` single places, so request batching never moves a ball.
      // A constant ball-size model draws nothing, so the weighted run is
      // the same draw sequence with a different committed amount.
      if (req.weight == 1) {
        sh.kernel.run(req.count, sh.rng);
      } else {
        sh.kernel.run_weighted(req.count, BallSizeModel::constant(req.weight), sh.rng);
      }
      resp.placed = req.count;
      resp.total_balls =
          committed_weight_.fetch_add(req.count * req.weight,
                                      std::memory_order_relaxed) +
          req.count * req.weight;
      fold_summary_locked(sh);
      {
        std::lock_guard<std::mutex> summary(summary_mu_);
        resp.max_load_num = summary_max_.balls;
        resp.max_load_cap = summary_max_.capacity;
        resp.argmax_bin = summary_argmax_;
      }
    } catch (...) {
      finish_ticket_locked(sh, req.ticket);
      throw;
    }
    finish_ticket_locked(sh, req.ticket);
  }
  record_place(sh, /*is_batch=*/true, std::chrono::steady_clock::now() - t0);
  return resp;
}

LookupResponse PlacementService::lookup(const LookupRequest& req) const {
  const auto t0 = std::chrono::steady_clock::now();
  LookupResponse resp;
  if (req.bin >= total_bins_) {
    throw ServeError("lookup: bin " + std::to_string(req.bin) + " out of range (n = " +
                     std::to_string(total_bins_) + ")");
  }
  const Shard& sh = shard_for_bin(req.bin);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    const std::size_t local = static_cast<std::size_t>(req.bin) - sh.first_bin;
    resp.bin = req.bin;
    resp.balls = sh.bins.weight(local);
    resp.capacity = sh.bins.capacity(local);
  }
  record_op(MessageType::kLookupRequest, std::chrono::steady_clock::now() - t0);
  return resp;
}

SnapshotResponse PlacementService::snapshot() const {
  const auto t0 = std::chrono::steady_clock::now();
  SnapshotResponse resp;
  {
    // Lock every shard in index order for one coherent cut across the
    // whole bin set (the only operation that needs all shards at once).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& sh : shards_) locks.emplace_back(sh->mu);

    resp.counts.reserve(total_bins_);
    Load best{0, 1};
    std::uint64_t fold = detail::kFingerprintBasis;
    for (const auto& sh : shards_) {
      resp.total_balls += sh->bins.total_weight();
      resp.total_capacity += sh->bins.total_capacity();
      if (best < sh->bins.max_load()) best = sh->bins.max_load();
      const BinArrayView view(sh->bins.slot_data(), sh->bins.size());
      fold = view.fingerprint_fold(fold);
      const std::vector<std::uint64_t> counts = sh->bins.weights();
      resp.counts.insert(resp.counts.end(), counts.begin(), counts.end());
    }
    resp.max_load_num = best.balls;
    resp.max_load_cap = best.capacity;
    resp.fingerprint = fold;  // == the single-array fingerprint at S = 1

    if (shards_.size() >= 2) {
      resp.shards.reserve(shards_.size());
      for (const auto& sh : shards_) {
        ShardSnapshot s;
        s.first_bin = sh->first_bin;
        s.bins = sh->bins.size();
        s.balls = sh->bins.total_weight();
        s.fingerprint = sh->bins.fingerprint();
        resp.shards.push_back(s);
      }
    }
  }
  record_op(MessageType::kSnapshotRequest, std::chrono::steady_clock::now() - t0);
  return resp;
}

StatsResponse PlacementService::stats() const {
  StatsResponse resp;

  // Per-shard placement state and telemetry, one shard lock at a time.
  std::vector<std::uint64_t> shard_placed(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    shard_placed[s] = shards_[s]->kernel.placed_balls();
    resp.balls_placed += shard_placed[s];
  }
  Histogram latency(kLatencyLoUs, kLatencyHiUs, kLatencyBins);
  std::uint64_t place_count = 0, place_ns = 0, batch_count = 0, batch_ns = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->stats_mu);
    latency.merge(sh->latency_us);
    place_count += sh->place_count;
    place_ns += sh->place_ns;
    batch_count += sh->batch_count;
    batch_ns += sh->batch_ns;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    resp.uptime_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
    resp.sessions = sessions_;
    resp.ops = ops_;
  }
  if (place_count != 0) {
    resp.ops.push_back(
        OpStat{static_cast<std::uint16_t>(MessageType::kPlaceRequest), place_count,
               place_ns});
  }
  if (batch_count != 0) {
    resp.ops.push_back(
        OpStat{static_cast<std::uint16_t>(MessageType::kBatchPlaceRequest), batch_count,
               batch_ns});
  }

  resp.place_latency_us.lo = kLatencyLoUs;
  resp.place_latency_us.hi = kLatencyHiUs;
  resp.place_latency_us.counts.resize(latency.bins());
  for (std::size_t i = 0; i < latency.bins(); ++i) {
    resp.place_latency_us.counts[i] = latency.count(i);
  }
  resp.place_latency_us.underflow = latency.underflow();
  resp.place_latency_us.overflow = latency.overflow();

  resp.service_shards = static_cast<std::uint32_t>(shards_.size());
  if (shards_.size() >= 2) {
    resp.session_threads = session_threads_;
    resp.shards.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardStat stat;
      stat.first_bin = shards_[s]->first_bin;
      stat.bins = shards_[s]->bins.size();
      stat.balls_placed = shard_placed[s];
      resp.shards.push_back(stat);
    }
  }
  return resp;
}

ShutdownResponse PlacementService::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  record_op(MessageType::kShutdownRequest, std::chrono::nanoseconds{0});
  return ShutdownResponse{};
}

bool PlacementService::shutdown_requested() const noexcept {
  return shutdown_.load(std::memory_order_acquire);
}

std::uint64_t PlacementService::balls_placed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->kernel.placed_balls();
  }
  return total;
}

SessionResult PlacementService::serve(Channel& channel) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++sessions_;
  }
  SessionResult result;
  Frame frame;
  for (;;) {
    try {
      if (!channel.receive_frame(frame)) return result;  // clean EOF
    } catch (const WireError&) {
      // The byte stream is out of sync; an ErrorResponse may or may not
      // reach the peer, but the session cannot continue either way.
      try {
        send_message(channel, ErrorResponse{"malformed frame; closing session"});
      } catch (...) {
      }
      return result;
    }

    try {
      const Request request = decode_request(frame);
      std::visit(Overloaded{
                     [&](const PlaceRequest& r) { send_message(channel, place(r)); },
                     [&](const BatchPlaceRequest& r) { send_message(channel, batch_place(r)); },
                     [&](const LookupRequest& r) { send_message(channel, lookup(r)); },
                     [&](const SnapshotRequest&) { send_message(channel, snapshot()); },
                     [&](const StatsRequest&) { send_message(channel, stats()); },
                     [&](const ShutdownRequest&) {
                       send_message(channel, shutdown());
                       result.shutdown_requested = true;
                     },
                 },
                 request);
    } catch (const ServeError& e) {
      // Semantic rejection: report and keep the session alive — the frame
      // boundary is intact.
      send_message(channel, ErrorResponse{e.what()});
    } catch (const WireError&) {
      try {
        send_message(channel, ErrorResponse{"malformed request payload; closing session"});
      } catch (...) {
      }
      return result;
    }
    ++result.requests;
    if (result.shutdown_requested) return result;
  }
}

}  // namespace nubb
