#include "net/protocol.hpp"

#include <algorithm>

namespace nubb {

// Encoders and decoders come in matched pairs; keep each pair adjacent so
// a field added to one side cannot be missed on the other.

void PlaceRequest::encode(WireWriter& w) const {
  w.u64(ticket);
  w.u64(weight);
}

PlaceRequest PlaceRequest::decode(WireReader& r) {
  PlaceRequest m;
  m.ticket = r.u64();
  m.weight = r.u64();
  return m;
}

void BatchPlaceRequest::encode(WireWriter& w) const {
  w.u64(ticket);
  w.u64(count);
  w.u64(weight);
}

BatchPlaceRequest BatchPlaceRequest::decode(WireReader& r) {
  BatchPlaceRequest m;
  m.ticket = r.u64();
  m.count = r.u64();
  m.weight = r.u64();
  return m;
}

void LookupRequest::encode(WireWriter& w) const { w.u64(bin); }

LookupRequest LookupRequest::decode(WireReader& r) {
  LookupRequest m;
  m.bin = r.u64();
  return m;
}

void SnapshotRequest::encode(WireWriter&) const {}
SnapshotRequest SnapshotRequest::decode(WireReader&) { return {}; }

void StatsRequest::encode(WireWriter&) const {}
StatsRequest StatsRequest::decode(WireReader&) { return {}; }

void ShutdownRequest::encode(WireWriter&) const {}
ShutdownRequest ShutdownRequest::decode(WireReader&) { return {}; }

void PlaceResponse::encode(WireWriter& w) const {
  w.u64(bin);
  w.u64(balls);
  w.u64(capacity);
}

PlaceResponse PlaceResponse::decode(WireReader& r) {
  PlaceResponse m;
  m.bin = r.u64();
  m.balls = r.u64();
  m.capacity = r.u64();
  return m;
}

void BatchPlaceResponse::encode(WireWriter& w) const {
  w.u64(placed);
  w.u64(total_balls);
  w.u64(max_load_num);
  w.u64(max_load_cap);
  w.u64(argmax_bin);
}

BatchPlaceResponse BatchPlaceResponse::decode(WireReader& r) {
  BatchPlaceResponse m;
  m.placed = r.u64();
  m.total_balls = r.u64();
  m.max_load_num = r.u64();
  m.max_load_cap = r.u64();
  m.argmax_bin = r.u64();
  return m;
}

void LookupResponse::encode(WireWriter& w) const {
  w.u64(bin);
  w.u64(balls);
  w.u64(capacity);
}

LookupResponse LookupResponse::decode(WireReader& r) {
  LookupResponse m;
  m.bin = r.u64();
  m.balls = r.u64();
  m.capacity = r.u64();
  return m;
}

// The shard-provenance blocks are *optional trailing extensions* within
// wire v1 (versioning rule 3): a single-shard daemon writes nothing after
// the PR-8 fields, so old clients and new clients agree byte for byte; a
// sharded daemon appends the block, which old clients reject loudly (their
// expect_end sees trailing bytes) instead of mis-parsing. New decoders read
// the block iff bytes remain, and a block advertising fewer than 2 shards
// is malformed by construction — zero-padded junk after a valid message
// still fails, exactly like it did before the extension existed.

void SnapshotResponse::encode(WireWriter& w) const {
  w.u64(total_balls);
  w.u64(total_capacity);
  w.u64(max_load_num);
  w.u64(max_load_cap);
  w.u64(fingerprint);
  w.u64_vec(counts);
  if (shards.size() >= 2) {
    w.u32(static_cast<std::uint32_t>(shards.size()));
    for (const ShardSnapshot& s : shards) {
      w.u64(s.first_bin);
      w.u64(s.bins);
      w.u64(s.balls);
      w.u64(s.fingerprint);
    }
  }
}

SnapshotResponse SnapshotResponse::decode(WireReader& r) {
  SnapshotResponse m;
  m.total_balls = r.u64();
  m.total_capacity = r.u64();
  m.max_load_num = r.u64();
  m.max_load_cap = r.u64();
  m.fingerprint = r.u64();
  m.counts = r.u64_vec();
  if (r.remaining() > 0) {
    const std::uint32_t shard_count = r.u32();
    // 32 wire bytes per shard; a count the payload cannot hold is corrupt.
    if (shard_count < 2 || shard_count > r.remaining() / 32) {
      throw WireError("protocol: snapshot shard block malformed");
    }
    m.shards.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      ShardSnapshot s;
      s.first_bin = r.u64();
      s.bins = r.u64();
      s.balls = r.u64();
      s.fingerprint = r.u64();
      m.shards.push_back(s);
    }
  }
  return m;
}

std::uint64_t WireHistogram::total() const noexcept {
  std::uint64_t t = underflow + overflow;
  for (const std::uint64_t c : counts) t += c;
  return t;
}

double WireHistogram::quantile_upper(double q) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double cum = static_cast<double>(underflow);
  if (cum >= target) return lo;
  const double width = (hi - lo) / static_cast<double>(counts.empty() ? 1 : counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += static_cast<double>(counts[i]);
    if (cum >= target) return lo + width * static_cast<double>(i + 1);
  }
  return hi;  // the quantile sits in the overflow tail
}

void StatsResponse::encode(WireWriter& w) const {
  w.u64(uptime_ns);
  w.u64(sessions);
  w.u64(balls_placed);
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const OpStat& s : ops) {
    w.u16(s.op);
    w.u64(s.count);
    w.u64(s.total_ns);
  }
  w.f64(place_latency_us.lo);
  w.f64(place_latency_us.hi);
  w.u64_vec(place_latency_us.counts);
  w.u64(place_latency_us.underflow);
  w.u64(place_latency_us.overflow);
  if (shards.size() >= 2) {
    w.u32(static_cast<std::uint32_t>(shards.size()));
    w.u32(session_threads);
    for (const ShardStat& s : shards) {
      w.u64(s.first_bin);
      w.u64(s.bins);
      w.u64(s.balls_placed);
    }
  }
}

StatsResponse StatsResponse::decode(WireReader& r) {
  StatsResponse m;
  m.uptime_ns = r.u64();
  m.sessions = r.u64();
  m.balls_placed = r.u64();
  const std::uint32_t op_count = r.u32();
  // 18 wire bytes per OpStat; reject counts the payload cannot hold.
  if (op_count > r.remaining() / 18) {
    throw WireError("protocol: op-stat count exceeds payload");
  }
  m.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    OpStat s;
    s.op = r.u16();
    s.count = r.u64();
    s.total_ns = r.u64();
    m.ops.push_back(s);
  }
  m.place_latency_us.lo = r.f64();
  m.place_latency_us.hi = r.f64();
  m.place_latency_us.counts = r.u64_vec();
  m.place_latency_us.underflow = r.u64();
  m.place_latency_us.overflow = r.u64();
  if (r.remaining() > 0) {
    const std::uint32_t shard_count = r.u32();
    // session_threads (4 bytes) then 24 wire bytes per shard.
    if (shard_count < 2 || r.remaining() < 4 ||
        shard_count > (r.remaining() - 4) / 24) {
      throw WireError("protocol: stats shard block malformed");
    }
    m.service_shards = shard_count;
    m.session_threads = r.u32();
    m.shards.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      ShardStat s;
      s.first_bin = r.u64();
      s.bins = r.u64();
      s.balls_placed = r.u64();
      m.shards.push_back(s);
    }
  }
  return m;
}

void ShutdownResponse::encode(WireWriter&) const {}
ShutdownResponse ShutdownResponse::decode(WireReader&) { return {}; }

void ErrorResponse::encode(WireWriter& w) const { w.str(message); }

ErrorResponse ErrorResponse::decode(WireReader& r) {
  ErrorResponse m;
  m.message = r.str();
  return m;
}

Request decode_request(const Frame& frame) {
  switch (frame.type) {
    case MessageType::kPlaceRequest:
      return decode_message<PlaceRequest>(frame);
    case MessageType::kBatchPlaceRequest:
      return decode_message<BatchPlaceRequest>(frame);
    case MessageType::kLookupRequest:
      return decode_message<LookupRequest>(frame);
    case MessageType::kSnapshotRequest:
      return decode_message<SnapshotRequest>(frame);
    case MessageType::kStatsRequest:
      return decode_message<StatsRequest>(frame);
    case MessageType::kShutdownRequest:
      return decode_message<ShutdownRequest>(frame);
    default:
      throw WireError("protocol: frame type " +
                      std::to_string(static_cast<int>(frame.type)) + " is not a request");
  }
}

}  // namespace nubb
