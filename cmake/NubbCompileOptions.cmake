# Defines `nubb_options`, the interface target every nubb binary links
# against: warning level (and optionally -Werror) in one place.
#
# The tree builds clean at this level on GCC 12+ / Clang 15+; keep it that
# way — new warnings are fixed, not suppressed (file-local pragmas for
# documented compiler false positives are the only exception, see
# src/util/cli.cpp).

add_library(nubb_options INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(nubb_options INTERFACE
    -Wall
    -Wextra
    -Wshadow
    -Wpedantic)
  if(NUBB_WERROR)
    target_compile_options(nubb_options INTERFACE -Werror)
  endif()
endif()
