# Resolves GoogleTest (system package first, FetchContent fallback) and
# defines `nubb_add_test`, the one-liner every test list uses.

find_package(GTest CONFIG QUIET)
if(NOT GTest_FOUND)
  message(STATUS "System GoogleTest not found — fetching v1.14.0")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

include(GoogleTest)

# nubb_add_test(<name> <source...> [LABEL <label>])
#
# Builds one test executable against the nubb library and registers every
# TEST case with CTest via gtest_discover_tests. LABEL (conventionally the
# suite directory name) enables `ctest -L util` style slicing.
function(nubb_add_test name)
  cmake_parse_arguments(ARG "" "LABEL" "" ${ARGN})
  add_executable(${name} ${ARG_UNPARSED_ARGUMENTS})
  target_link_libraries(${name} PRIVATE nubb nubb_options GTest::gtest GTest::gtest_main)
  gtest_discover_tests(${name}
    DISCOVERY_TIMEOUT 120
    PROPERTIES TIMEOUT 600 LABELS "${ARG_LABEL}")
endfunction()
