# Applies the NUBB_SANITIZE toggle (address | undefined | thread) to the
# shared `nubb_options` interface target. Sanitizers must reach every
# translation unit, so this runs after NubbCompileOptions and before any
# target is declared.

if(NUBB_SANITIZE)
  if(NOT NUBB_SANITIZE MATCHES "^(address|undefined|thread)$")
    message(FATAL_ERROR
      "NUBB_SANITIZE must be one of: address, undefined, thread (got '${NUBB_SANITIZE}')")
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "NUBB_SANITIZE requires GCC or Clang")
  endif()
  target_compile_options(nubb_options INTERFACE
    -fsanitize=${NUBB_SANITIZE}
    -fno-omit-frame-pointer)
  target_link_options(nubb_options INTERFACE -fsanitize=${NUBB_SANITIZE})
endif()
